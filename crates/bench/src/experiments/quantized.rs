//! Does the attack survive INT8 deployment?
//!
//! Edge accelerators overwhelmingly ship post-training-quantized models:
//! weights symmetric per output channel, activations affine with an exact
//! zero point, batch norm folded. Every quantity HuffDuff leans on is
//! potentially disturbed — the boundary stripes live in activation values,
//! the timing channel in nnz counts — so this experiment runs the same
//! pruned victims in f32 and INT8 and compares geometry recovery, probe
//! budget, and (as a sanity anchor) top-1 agreement between the two
//! deployments.
//!
//! The PTQ scheme is constructed so that *exact zeros survive*: pruned
//! weights quantize to 0 (symmetric scale), and a ReLU-produced 0.0
//! activation quantizes to the zero point and dequantizes back to +0.0
//! bit-exactly. If recovery matches f32, that design is why.

use crate::table::Table;
use crate::victims::{pruned_victim, quantized_victim, Model, PruneMode};
use crate::Scale;
use hd_accel::{AccelConfig, Precision};
use hd_dnn::quantize::calibration_images;
use huffduff_core::eval::score_geometry;
use huffduff_core::prober::{probe, ProberConfig};

/// Victim width — matches the robustness matrix so cells line up.
pub const QUANT_WIDTH: f64 = crate::experiments::MATRIX_WIDTH;

/// Images used for the f32-vs-INT8 top-1 agreement check.
const AGREEMENT_IMAGES: usize = 16;

/// One (victim, precision) cell of the quantization experiment.
#[derive(Clone, Debug)]
pub struct QuantCell {
    /// Victim family.
    pub model: Model,
    /// How the victim was pruned.
    pub mode: PruneMode,
    /// Deployed compute precision.
    pub precision: Precision,
    /// Probes the prober spent.
    pub probes_used: usize,
    /// Layers recovered exactly.
    pub geometry_correct: usize,
    /// Layers scored.
    pub geometry_total: usize,
    /// Top-1 agreement with the f32 deployment over random probe images.
    /// `None` on f32 rows (they are the reference).
    pub top1_agree: Option<(usize, usize)>,
}

fn prober_config() -> ProberConfig {
    ProberConfig {
        shifts: 12,
        max_probes: 8,
        stable_probes: 2,
        seed: 41,
        ..ProberConfig::default()
    }
}

/// Top-1 agreement between the f32 model and its INT8 deployment over
/// `AGREEMENT_IMAGES` random images.
fn top1_agreement(device_q: &hd_accel::Device) -> (usize, usize) {
    let oracle = device_q.oracle();
    let qnet = device_q.quantized_net();
    let images = calibration_images(oracle.net.input_shape(), AGREEMENT_IMAGES, 0xA11CE);
    let argmax = |logits: &[f32]| {
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let mut agree = 0;
    for img in &images {
        let f = oracle.net.forward(oracle.params, img);
        let q = oracle.net.forward_quantized(qnet, img);
        if argmax(f.logits()) == argmax(q.logits()) {
            agree += 1;
        }
    }
    (agree, images.len())
}

/// Runs the experiment and returns every cell. Deterministic in `scale`.
pub fn quantized_cells(scale: Scale) -> Vec<QuantCell> {
    let models: &[Model] = match scale {
        Scale::Smoke | Scale::Fast => &[Model::VggS],
        Scale::Full => &Model::BOTH,
    };
    let modes: &[PruneMode] = match scale {
        Scale::Smoke => &[PruneMode::Unstructured],
        Scale::Fast | Scale::Full => &PruneMode::DEFAULTS,
    };
    let pcfg = prober_config();
    let mut cells = Vec::new();
    for &model in models {
        for &mode in modes {
            let (dev_f, net_f) =
                pruned_victim(model, mode, QUANT_WIDTH, 23, AccelConfig::eyeriss_v2());
            let res = probe(&dev_f, &pcfg).expect("f32 probe runs");
            let score = score_geometry(&net_f, &res);
            cells.push(QuantCell {
                model,
                mode,
                precision: Precision::F32,
                probes_used: res.probes_used,
                geometry_correct: score.correct,
                geometry_total: score.total,
                top1_agree: None,
            });

            let (dev_q, net_q) = quantized_victim(model, mode, QUANT_WIDTH, 23);
            let res = probe(&dev_q, &pcfg).expect("int8 probe runs");
            let score = score_geometry(&net_q, &res);
            cells.push(QuantCell {
                model,
                mode,
                precision: Precision::Int8,
                probes_used: res.probes_used,
                geometry_correct: score.correct,
                geometry_total: score.total,
                top1_agree: Some(top1_agreement(&dev_q)),
            });
        }
    }
    cells
}

/// Runs the experiment and renders it.
pub fn quantized_table(scale: Scale) -> Table {
    render_quantized(&quantized_cells(scale))
}

/// Renders precomputed cells (see [`quantized_cells`]).
pub fn render_quantized(cells: &[QuantCell]) -> Table {
    let mut t = Table::new(
        "INT8 deployment — does the boundary/timing channel survive PTQ?",
        &[
            "victim",
            "pruning",
            "precision",
            "probes",
            "geometry exact",
            "top-1 vs f32",
        ],
    );
    for c in cells {
        t.push_row(vec![
            c.model.name().to_string(),
            c.mode.name(),
            c.precision.to_string(),
            c.probes_used.to_string(),
            format!("{}/{}", c.geometry_correct, c.geometry_total),
            match c.top1_agree {
                Some((a, n)) => format!("{a}/{n}"),
                None => "-".to_string(),
            },
        ]);
    }
    let (pairs, matching) = f32_int8_recovery_agreement(cells);
    t.push_note(format!(
        "geometry recovery identical between f32 and INT8 in {matching}/{pairs} victim cells"
    ));
    t.push_note(
        "PTQ keeps exact zeros: pruned weights quantize to 0 and ReLU zeros round-trip \
         through the activation zero point, so the nnz statistics the encoder leaks are unchanged",
    );
    t.push_note(
        "INT8 halves the compute phase (2 MACs/cycle/slot) but the encode drain is \
         bandwidth-bound, so the stripe-timing separation persists",
    );
    t
}

/// Pairs f32/INT8 cells that share `(model, mode)` and counts how many
/// pairs report identical geometry recovery. Returns `(pairs, matching)`.
pub fn f32_int8_recovery_agreement(cells: &[QuantCell]) -> (usize, usize) {
    let mut pairs = 0;
    let mut matching = 0;
    for c in cells.iter().filter(|c| c.precision == Precision::F32) {
        if let Some(q) = cells
            .iter()
            .find(|q| q.precision == Precision::Int8 && q.model == c.model && q.mode == c.mode)
        {
            pairs += 1;
            if (q.geometry_correct, q.geometry_total) == (c.geometry_correct, c.geometry_total) {
                matching += 1;
            }
        }
    }
    (pairs, matching)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_pair_f32_with_int8() {
        let cells = quantized_cells(Scale::Smoke);
        // 1 model x 1 mode x 2 precisions.
        assert_eq!(cells.len(), 2);
        let (pairs, _) = f32_int8_recovery_agreement(&cells);
        assert_eq!(pairs, 1);

        // The INT8 deployment must still be attackable: recovery does not
        // collapse relative to the f32 baseline.
        let f = &cells[0];
        let q = &cells[1];
        assert_eq!(f.precision, Precision::F32);
        assert_eq!(q.precision, Precision::Int8);
        assert!(
            q.geometry_correct + 1 >= f.geometry_correct,
            "INT8 recovery collapsed: {}/{} vs f32 {}/{}",
            q.geometry_correct,
            q.geometry_total,
            f.geometry_correct,
            f.geometry_total
        );

        // PTQ is accurate enough that the deployments mostly agree.
        let (agree, n) = q.top1_agree.expect("int8 row carries agreement");
        assert!(agree * 2 >= n, "top-1 agreement collapsed: {agree}/{n}");
    }

    #[test]
    fn table_renders_one_row_per_cell() {
        let cells = vec![
            QuantCell {
                model: Model::VggS,
                mode: PruneMode::Unstructured,
                precision: Precision::F32,
                probes_used: 9,
                geometry_correct: 13,
                geometry_total: 13,
                top1_agree: None,
            },
            QuantCell {
                model: Model::VggS,
                mode: PruneMode::Unstructured,
                precision: Precision::Int8,
                probes_used: 9,
                geometry_correct: 13,
                geometry_total: 13,
                top1_agree: Some((15, 16)),
            },
        ];
        let t = render_quantized(&cells);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r.len() == 6));
        assert_eq!(t.rows[0][5], "-");
        assert_eq!(t.rows[1][5], "15/16");
        assert_eq!(f32_int8_recovery_agreement(&cells), (1, 1));
    }
}
