//! E5 — §8.2 "Finalizing the solution space": first-layer channel range
//! from the ≤60% sparsity bound and the final candidate counts.

use crate::table::Table;
use crate::victims::{paper_victim, Model};
use crate::Scale;
use huffduff_core::attack::{run, AttackConfig};
use huffduff_core::prober::ProberConfig;

/// Regenerates the finalization numbers: the feasible `k1` range, the
/// final solution count, and whether the victim's true `K1` is inside.
pub fn final_solution_table(scale: Scale) -> Table {
    let mut t = Table::new(
        "§8.2 — finalized solution space",
        &[
            "model",
            "true K1",
            "k1 range",
            "solutions",
            "after footprint filter",
            "true K1 covered",
        ],
    );
    let models: &[Model] = match scale {
        Scale::Smoke | Scale::Fast => &[Model::VggS],
        Scale::Full => &Model::BOTH,
    };
    for &model in models {
        let (device, net) = paper_victim(model, 3);
        let true_k1 = huffduff_core::eval::expected_conv_channels(&net)[0];
        let cfg = AttackConfig {
            prober: match scale {
                Scale::Smoke | Scale::Fast => ProberConfig {
                    shifts: 16,
                    max_probes: 6,
                    stable_probes: 2,
                    ..Default::default()
                },
                Scale::Full => ProberConfig::default(),
            },
            classes: 10,
            ..Default::default()
        };
        let outcome = run(&device, &cfg).expect("attack completes");
        let space = outcome
            .space
            .as_ref()
            .expect("full channel recovers a solution space");
        let lo = space.k1_candidates.first().copied().unwrap_or(0);
        let hi = space.k1_candidates.last().copied().unwrap_or(0);
        let filtered = space.filter_by_weight_footprints(&huffduff_core::CodecModel::default());
        t.push_row(vec![
            model.name().to_string(),
            true_k1.to_string(),
            format!("[{lo}, {hi}]"),
            space.count().to_string(),
            filtered.len().to_string(),
            filtered.contains(&true_k1).to_string(),
        ]);
    }
    t.push_note("paper: ranges [58,123] (VGG-S) and [30,73] (ResNet18); 66 and 44 solutions");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full-size attack, ~30 s in release; run with --ignored"]
    fn vgg_solution_space_is_small_and_covers_truth() {
        let t = final_solution_table(Scale::Fast);
        assert_eq!(t.rows[0][5], "true");
        let count: usize = t.rows[0][3].parse().unwrap();
        assert!(count > 5 && count < 200, "count {count}");
    }
}
