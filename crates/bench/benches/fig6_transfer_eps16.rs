//! Bench for E8 (Figure 6, eps = 16): prints the fast-scale transfer
//! figure at the imperceptible budget and times targeted FGSM.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_adversarial::{fgsm, Epsilon};
use hd_bench::experiments::{fig5_fig6_transfer, prepare_models};
use hd_bench::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_models(Scale::Smoke, 42);
    println!("{}", fig5_fig6_transfer(&prepared, Epsilon::fig6()));

    let (net, params) = (&prepared.victim.0, &prepared.victim.1);
    let img = &prepared.transfer_images[0];
    c.bench_function("fgsm_mini_vgg", |b| {
        b.iter(|| fgsm(net, params, std::hint::black_box(img), 3, Epsilon::fig6()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
