//! Bench for E3 (§8.2 prober): prints the fast-scale recovery table and
//! times one probe inference + trace analysis on the VGG-S victim.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::victims::{paper_victim, Model};
use hd_bench::{experiments::prober_table, Scale};
use huffduff_core::probe::stripe_probes;

fn bench(c: &mut Criterion) {
    println!("{}", prober_table(Scale::Fast));

    let (device, _) = paper_victim(Model::VggS, 3);
    let fam = &stripe_probes(device.input_shape(), 4, 1, 9)[0];
    c.bench_function("vgg_probe_run_and_analyze", |b| {
        b.iter(|| {
            let trace = device.run(std::hint::black_box(&fam.images[2]));
            hd_trace::analyze(&trace).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
