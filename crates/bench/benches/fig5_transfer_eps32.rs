//! Bench for E7 (Figure 5, eps = 32): prints the fast-scale transfer
//! figure and times a single BIM crafting step.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_adversarial::{bim, BimConfig, Epsilon};
use hd_bench::experiments::{fig5_fig6_transfer, prepare_models};
use hd_bench::Scale;

fn bench(c: &mut Criterion) {
    let prepared = prepare_models(Scale::Smoke, 42);
    println!("{}", fig5_fig6_transfer(&prepared, Epsilon::fig5()));

    let (net, params) = (&prepared.victim.0, &prepared.victim.1);
    let img = &prepared.transfer_images[0];
    let cfg = BimConfig {
        steps: 2,
        ..BimConfig::for_epsilon(Epsilon::fig5())
    };
    c.bench_function("bim_2_steps_mini_vgg", |b| {
        b.iter(|| bim(net, params, std::hint::black_box(img), 3, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
