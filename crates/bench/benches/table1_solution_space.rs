//! Bench for E1 (Table 1): prints the fast-scale table and times the
//! dense ReverseCNN constraint solver on a recorded trace analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::{experiments::table1, Scale};
use hd_dnn::graph::Params;
use hd_tensor::{CompressionScheme, Tensor3};
use huffduff_core::reversecnn::{reverse_cnn_dense, DenseCodec, SearchSpace};

fn bench(c: &mut Criterion) {
    println!("{}", table1(Scale::Fast));

    let net = hd_dnn::zoo::resnet18(10);
    let params = Params::init(&net, 1);
    let cfg = hd_accel::AccelConfig::eyeriss_v2()
        .with_schemes(CompressionScheme::Dense, CompressionScheme::Dense);
    let device = hd_accel::Device::new(net, params, cfg);
    let analysis = hd_trace::analyze(&device.run(&Tensor3::full(3, 32, 32, 0.5))).unwrap();

    c.bench_function("reversecnn_dense_resnet18", |b| {
        b.iter(|| {
            reverse_cnn_dense(
                std::hint::black_box(&analysis),
                (32, 32, 3),
                &SearchSpace::default(),
                &DenseCodec::default(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
