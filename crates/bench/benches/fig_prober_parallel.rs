//! Bench for the pooled probe executor: runs the full VGG-S probe at
//! `-j1` (serial), `-j2`, `-j4`, and `-jN` (all cores), asserts every
//! `ProberResult` is bit-identical to serial, and writes the measured
//! wall-clock numbers to `BENCH_prober_parallel.json` at the repository
//! root — together with a buffered-vs-streaming memory comparison for one
//! probe trace.
//!
//! ```text
//! cargo bench -p hd-bench --bench fig_prober_parallel
//! HD_BENCH_SMOKE=1 cargo bench -p hd-bench --bench fig_prober_parallel   # CI
//! HD_BENCH_GUARD=1 cargo bench -p hd-bench --bench fig_prober_parallel   # guard
//! ```
//!
//! `HD_BENCH_GUARD=1` validates the checked-in artifact instead of timing:
//! the schema must be `v2`, and the honesty invariants must hold — a row
//! whose effective worker count is 1 carries `"speedup_vs_serial": null`,
//! and `measured_parallel_speedup` is `true` only when the recording host
//! had more than one core. A 1-core recording therefore *cannot* report a
//! measured parallel speedup; it self-describes as unmeasured instead of
//! presenting serial noise as a result.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::victims::{paper_victim, Model};
use hd_trace::StreamingAnalyzer;
use huffduff_core::prober::{probe, ProberConfig};
use std::sync::Mutex;
use std::time::Instant;

const BENCH_JSON: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_prober_parallel.json"
);

/// Times `probe(device, cfg)` under criterion, recording every sample
/// (including the warmup, which the caller discards).
fn timed_bench(
    c: &mut Criterion,
    id: &str,
    device: &hd_accel::Device,
    cfg: &ProberConfig,
) -> (huffduff_core::prober::ProberResult, Vec<f64>) {
    let times = Mutex::new(Vec::new());
    let last = Mutex::new(None);
    c.bench_function(id, |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let r = probe(device, cfg).expect("probe succeeds");
            times.lock().unwrap().push(t0.elapsed().as_secs_f64());
            *last.lock().unwrap() = Some(r);
        })
    });
    let mut times = times.into_inner().unwrap();
    if times.len() > 1 {
        times.remove(0); // warmup sample
    }
    (last.into_inner().unwrap().expect("probe ran"), times)
}

/// `HD_BENCH_GUARD=1`: schema/honesty validation of the recorded artifact.
fn schema_guard() {
    use hd_obs::json::Json;
    let text = std::fs::read_to_string(BENCH_JSON).expect("BENCH_prober_parallel.json missing");
    let json = Json::parse(&text).expect("BENCH_prober_parallel.json is valid JSON");

    assert_eq!(
        json.get("schema").and_then(|s| s.as_str()),
        Some("hd-bench/prober-parallel/v2"),
        "artifact must carry the v2 schema tag"
    );
    let host_cores = json
        .get("host_cores")
        .and_then(|v| v.as_f64())
        .expect("host_cores present") as usize;
    assert!(host_cores >= 1);
    assert_eq!(
        json.get("results_bit_identical").and_then(|v| v.as_bool()),
        Some(true),
        "every recorded row must have matched serial bit-for-bit"
    );
    let measured = json
        .get("measured_parallel_speedup")
        .and_then(|v| v.as_bool())
        .expect("measured_parallel_speedup present");
    assert_eq!(
        measured,
        host_cores > 1,
        "a {host_cores}-core recording must declare measured_parallel_speedup = {}",
        host_cores > 1
    );

    let rows = json
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("rows array");
    let ids: Vec<&str> = rows
        .iter()
        .map(|r| r.get("id").and_then(|i| i.as_str()).expect("row id"))
        .collect();
    assert_eq!(
        ids,
        ["serial", "j2", "j4", "jN"],
        "v2 artifact must record the serial, -j2, -j4, and -jN rows"
    );
    for row in rows {
        let id = row.get("id").and_then(|i| i.as_str()).unwrap_or("?");
        let workers = row
            .get("workers")
            .and_then(|w| w.as_f64())
            .expect("row workers") as usize;
        assert!(workers <= host_cores.max(1) * 64, "absurd worker count");
        let speedup = row.get("speedup_vs_serial").expect("speedup field present");
        let has_speedup = speedup.as_f64().is_some();
        if id == "serial" || workers <= 1 || !measured {
            // The honesty invariant: one effective worker (or a 1-core
            // host) measures the serial path, so no speedup may be
            // reported — the field must be null, never a number.
            assert!(
                !has_speedup,
                "row {id:?} ran on {workers} worker(s) (host_cores = {host_cores}) \
                 but reports a measured speedup"
            );
        } else {
            assert!(
                has_speedup,
                "row {id:?} ran on {workers} workers but reports no speedup"
            );
        }
    }
    assert!(
        json.get("memory")
            .and_then(|m| m.get("streaming_peak_pending_reads"))
            .and_then(|v| v.as_f64())
            .is_some(),
        "memory comparison missing"
    );
    println!(
        "guard: BENCH_prober_parallel.json schema v2 OK \
         (host_cores = {host_cores}, measured = {measured})"
    );
}

/// Buffered-vs-streaming memory for one representative probe trace: the
/// buffered path retains every bus event; the streaming analyzer's
/// transient state peaks at one encode window of pending reads.
fn memory_comparison(device: &hd_accel::Device) -> (usize, usize) {
    let shape = device.input_shape();
    let mut img = hd_tensor::Tensor3::zeros(shape.c, shape.h, shape.w);
    for c in 0..shape.c {
        for y in 0..shape.h {
            img.set(c, y, 0, 1.0);
        }
    }
    let trace = device.run(&img);
    let mut sink = StreamingAnalyzer::new();
    device
        .try_run_with(&img, &mut sink)
        .expect("streaming run succeeds");
    (trace.len(), sink.peak_pending_reads())
}

fn bench(c: &mut Criterion) {
    if std::env::var("HD_BENCH_GUARD").is_ok() {
        schema_guard();
        return;
    }
    let smoke = std::env::var("HD_BENCH_SMOKE").is_ok();
    let base = if smoke {
        ProberConfig {
            shifts: 8,
            max_probes: 2,
            stable_probes: 1,
            ..Default::default()
        }
    } else {
        ProberConfig::default()
    };
    let (device, _) = paper_victim(Model::VggS, 3);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // (row id, requested parallelism); None = all cores.
    let rows_cfg: [(&str, Option<usize>); 4] = [
        ("serial", Some(1)),
        ("j2", Some(2)),
        ("j4", Some(4)),
        ("jN", None),
    ];
    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    let fmt_samples = |ts: &[f64]| {
        ts.iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut serial_result = None;
    let mut serial_mean = 0.0;
    let mut rows = Vec::new();
    for (id, requested) in rows_cfg {
        let cfg = base.clone().with_parallelism(requested);
        let workers = cfg.effective_parallelism(cfg.shifts);
        let (result, samples) = timed_bench(c, &format!("vgg_probe_{id}"), &device, &cfg);
        let m = mean(&samples);
        match &serial_result {
            None => {
                serial_result = Some(result);
                serial_mean = m;
            }
            Some(serial) => assert_eq!(
                serial, &result,
                "{id} probe must be bit-identical to serial"
            ),
        }
        // Speedup is only a measurement when the row actually ran more
        // than one worker on more than one core; otherwise it is serial
        // noise and the artifact must say so with a null.
        let measured_row = workers > 1 && host_cores > 1;
        let speedup = if id != "serial" && measured_row {
            format!("{:.3}", serial_mean / m)
        } else {
            "null".to_string()
        };
        println!("{id}: {m:.2}s on {workers} worker(s), speedup_vs_serial = {speedup}");
        rows.push(format!(
            "    {{ \"id\": \"{id}\", \"requested\": {}, \"workers\": {workers}, \
             \"mean_s\": {m:.3}, \"samples_s\": [{}], \"speedup_vs_serial\": {speedup} }}",
            requested.map_or("null".to_string(), |r| r.to_string()),
            fmt_samples(&samples),
        ));
    }

    let (buffered_events, peak_pending) = memory_comparison(&device);
    println!(
        "memory: buffered trace retains {buffered_events} events; \
         streaming analyzer peaks at {peak_pending} pending reads"
    );

    if smoke {
        // Don't clobber the checked-in full-run artifact with smoke numbers.
        println!("smoke mode: skipping BENCH_prober_parallel.json");
        return;
    }
    let measured = host_cores > 1;
    let note = if measured {
        "speedup_vs_serial is mean serial / mean row wall-clock on this host; \
         rows whose effective worker count is 1 report null"
    } else {
        "recorded on a 1-core host: every row measures the serial path, so no \
         parallel speedup exists to report; re-record on a multicore host for \
         measured numbers"
    };
    let json = format!(
        "{{\n  \"bench\": \"fig_prober_parallel\",\n  \
         \"schema\": \"hd-bench/prober-parallel/v2\",\n  \"victim\": \"VGG-S\",\n  \
         \"host_cores\": {host_cores},\n  \"measured_parallel_speedup\": {measured},\n  \
         \"results_bit_identical\": true,\n  \"rows\": [\n{}\n  ],\n  \
         \"memory\": {{ \"buffered_trace_events\": {buffered_events}, \
         \"streaming_peak_pending_reads\": {peak_pending} }},\n  \"note\": \"{note}\"\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(BENCH_JSON, json).expect("write BENCH_prober_parallel.json");
    println!("wrote {BENCH_JSON}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);
