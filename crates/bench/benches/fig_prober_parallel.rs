//! Bench for the parallel probe executor: runs the full VGG-S probe with
//! the serial executor (`parallelism = Some(1)`) and the parallel one
//! (`parallelism = None`, all cores), asserts the two `ProberResult`s are
//! bit-identical, and writes the measured wall-clock numbers to
//! `BENCH_prober_parallel.json` at the repository root.
//!
//! ```text
//! cargo bench -p hd-bench --bench fig_prober_parallel
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::victims::{paper_victim, Model};
use huffduff_core::prober::{probe, ProberConfig};
use std::sync::Mutex;
use std::time::Instant;

/// Times `probe(device, cfg)` under criterion, recording every sample
/// (including the warmup, which the caller discards).
fn timed_bench(
    c: &mut Criterion,
    id: &str,
    device: &hd_accel::Device,
    cfg: &ProberConfig,
) -> (huffduff_core::prober::ProberResult, Vec<f64>) {
    let times = Mutex::new(Vec::new());
    let last = Mutex::new(None);
    c.bench_function(id, |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let r = probe(device, cfg).expect("probe succeeds");
            times.lock().unwrap().push(t0.elapsed().as_secs_f64());
            *last.lock().unwrap() = Some(r);
        })
    });
    let mut times = times.into_inner().unwrap();
    times.remove(0); // warmup sample
    (last.into_inner().unwrap().expect("probe ran"), times)
}

fn bench(c: &mut Criterion) {
    let (device, _) = paper_victim(Model::VggS, 3);
    let serial_cfg = ProberConfig::default().with_parallelism(Some(1));
    let parallel_cfg = ProberConfig::default(); // parallelism: None = all cores
    let workers = parallel_cfg.effective_parallelism(parallel_cfg.shifts);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (serial, serial_s) = timed_bench(c, "vgg_probe_serial", &device, &serial_cfg);
    let (parallel, parallel_s) = timed_bench(c, "vgg_probe_parallel", &device, &parallel_cfg);
    assert_eq!(
        serial, parallel,
        "parallel probe must be bit-identical to serial"
    );

    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    let (s_mean, p_mean) = (mean(&serial_s), mean(&parallel_s));
    println!(
        "serial {s_mean:.2}s vs parallel {p_mean:.2}s on {workers} worker(s) \
         ({host_cores} host cores): {:.2}x, results identical",
        s_mean / p_mean
    );

    let fmt_samples = |ts: &[f64]| {
        ts.iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"bench\": \"fig_prober_parallel\",\n  \"victim\": \"VGG-S\",\n  \
         \"host_cores\": {host_cores},\n  \"serial\": {{ \"mean_s\": {s_mean:.3}, \
         \"samples_s\": [{}] }},\n  \"parallel\": {{ \"workers\": {workers}, \
         \"mean_s\": {p_mean:.3}, \"samples_s\": [{}] }},\n  \
         \"speedup\": {:.3},\n  \"results_bit_identical\": true,\n  \"note\": \"{}\"\n}}\n",
        fmt_samples(&serial_s),
        fmt_samples(&parallel_s),
        s_mean / p_mean,
        if workers == 1 {
            "recorded on a 1-core host: the executor clamps to 1 worker, so both rows \
             measure the serial path and any speedup is sample noise"
        } else {
            "speedup is mean serial / mean parallel wall-clock on this host"
        },
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_prober_parallel.json"
    );
    std::fs::write(path, json).expect("write BENCH_prober_parallel.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);
