//! Bench for the sparse forward path: runs the full end-to-end prober
//! (stripe probes through the victim device, single-threaded) against
//! VGG-S and ResNet-18 with (a) the dense default backend pinned via an
//! `auto_sparse: false` policy and (b) the cached-CSC sparse path, asserts
//! the `ProberResult`s are bit-identical, and writes the measured
//! wall-clock numbers to `BENCH_sparse_fwd.json` at the repository root.
//!
//! ```text
//! cargo bench -p hd-bench --bench fig_sparse_fwd
//! HD_BENCH_SMOKE=1 cargo bench -p hd-bench --bench fig_sparse_fwd   # CI
//! HD_BENCH_GUARD=1 cargo bench -p hd-bench --bench fig_sparse_fwd   # guard
//! ```
//!
//! `HD_BENCH_GUARD=1` additionally runs the full (non-smoke) VGG-S sparse
//! prober once with telemetry explicitly disabled and fails if its
//! wall-clock regresses more than 2% over the `mean_s` recorded in
//! `BENCH_sparse_fwd.json` — the contract that the `hd-obs` disabled path
//! (one relaxed atomic load per hook) stays free.
//!
//! Both rows run with `parallelism = Some(1)`: the sparse path accelerates
//! each inference, so its speedup is orthogonal to (and composes with) the
//! `-j` probe-level parallelism measured by `fig_prober_parallel`. Smoke
//! mode shrinks the probe budget and skips the JSON write so CI cannot
//! clobber the checked-in full-run artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::victims::{paper_victim_with, Model};
use hd_tensor::BackendPolicy;
use huffduff_core::prober::{probe, ProberConfig};
use std::sync::Mutex;
use std::time::Instant;

/// Times `probe(device, cfg)` under criterion, recording every sample
/// (including the warmup, which the caller discards).
fn timed_bench(
    c: &mut Criterion,
    id: &str,
    device: &hd_accel::Device,
    cfg: &ProberConfig,
) -> (huffduff_core::prober::ProberResult, Vec<f64>) {
    let times = Mutex::new(Vec::new());
    let last = Mutex::new(None);
    c.bench_function(id, |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let r = probe(device, cfg).expect("probe succeeds");
            times.lock().unwrap().push(t0.elapsed().as_secs_f64());
            *last.lock().unwrap() = Some(r);
        })
    });
    let mut times = times.into_inner().unwrap();
    if times.len() > 1 {
        times.remove(0); // warmup sample
    }
    (last.into_inner().unwrap().expect("probe ran"), times)
}

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse_fwd.json");

/// `HD_BENCH_GUARD=1` regression guard: with telemetry disabled, the full
/// single-threaded VGG-S sparse prober must stay within 2% of the `mean_s`
/// recorded in `BENCH_sparse_fwd.json`. Uses the best of two measured runs
/// (after a warmup) so one scheduler hiccup cannot fail the guard, and the
/// vendored `hd_obs::json` parser so the artifact schema stays honest.
fn telemetry_overhead_guard() {
    use hd_obs::json::Json;
    let text = std::fs::read_to_string(BENCH_JSON).expect("BENCH_sparse_fwd.json missing");
    let json = Json::parse(&text).expect("BENCH_sparse_fwd.json is valid JSON");
    let baseline = json
        .get("victims")
        .and_then(|v| v.as_array())
        .and_then(|victims| {
            victims
                .iter()
                .find(|v| v.get("victim").and_then(|n| n.as_str()) == Some("VGG-S"))
        })
        .and_then(|v| v.get("sparse"))
        .and_then(|s| s.get("mean_s"))
        .and_then(|m| m.as_f64())
        .expect("VGG-S sparse mean_s present in BENCH_sparse_fwd.json");

    hd_obs::set_enabled(false);
    let (device, _) = paper_victim_with(Model::VggS, 3, hd_accel::AccelConfig::eyeriss_v2());
    let cfg = ProberConfig::default().with_parallelism(Some(1));
    probe(&device, &cfg).expect("probe succeeds"); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        probe(&device, &cfg).expect("probe succeeds");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let limit = baseline * 1.02;
    println!(
        "guard: telemetry-disabled VGG-S sparse probe {best:.3}s \
         (recorded {baseline:.3}s, limit {limit:.3}s)"
    );
    assert!(
        best <= limit,
        "telemetry-disabled prober regressed more than 2%: {best:.3}s vs \
         recorded mean {baseline:.3}s"
    );
}

fn bench(c: &mut Criterion) {
    if std::env::var("HD_BENCH_GUARD").is_ok() {
        telemetry_overhead_guard();
        return;
    }
    let smoke = std::env::var("HD_BENCH_SMOKE").is_ok();
    let probe_cfg = if smoke {
        ProberConfig {
            shifts: 8,
            max_probes: 2,
            stable_probes: 1,
            ..Default::default()
        }
    } else {
        ProberConfig::default()
    }
    .with_parallelism(Some(1)); // isolate per-inference speed from -j fan-out

    // Dense baseline: the default backend (im2col+GEMM) with auto sparse
    // routing disabled — exactly the device behavior before the CSC path.
    let dense_policy = BackendPolicy {
        auto_sparse: false,
        ..Default::default()
    };
    let models = if smoke {
        vec![Model::VggS]
    } else {
        Model::BOTH.to_vec()
    };

    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    let fmt_samples = |ts: &[f64]| {
        ts.iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut rows = Vec::new();
    for model in models {
        let (dense_dev, _) = paper_victim_with(
            model,
            3,
            hd_accel::AccelConfig::eyeriss_v2().with_backend_policy(dense_policy),
        );
        // Sparse path: the out-of-the-box default config auto-selects the
        // cached-CSC forward for sparse inputs (every stripe probe).
        let (sparse_dev, _) = paper_victim_with(model, 3, hd_accel::AccelConfig::eyeriss_v2());

        let tag = model.name().to_lowercase().replace('-', "_");
        let (dense_res, dense_s) =
            timed_bench(c, &format!("{tag}_probe_dense"), &dense_dev, &probe_cfg);
        let (sparse_res, sparse_s) =
            timed_bench(c, &format!("{tag}_probe_sparse"), &sparse_dev, &probe_cfg);
        assert_eq!(
            dense_res,
            sparse_res,
            "sparse forward must be bit-identical to the dense backend on {}",
            model.name()
        );

        let (d_mean, s_mean) = (mean(&dense_s), mean(&sparse_s));
        let speedup = d_mean / s_mean;
        println!(
            "{}: dense {d_mean:.2}s vs sparse {s_mean:.2}s (single-threaded): \
             {speedup:.2}x, results identical",
            model.name()
        );
        rows.push(format!(
            "    {{ \"victim\": \"{}\", \"dense\": {{ \"mean_s\": {d_mean:.3}, \
             \"samples_s\": [{}] }}, \"sparse\": {{ \"mean_s\": {s_mean:.3}, \
             \"samples_s\": [{}] }}, \"speedup\": {speedup:.3} }}",
            model.name(),
            fmt_samples(&dense_s),
            fmt_samples(&sparse_s),
        ));
    }

    if smoke {
        // Don't clobber the checked-in full-run artifact with smoke numbers.
        println!("smoke mode: skipping BENCH_sparse_fwd.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"fig_sparse_fwd\",\n  \"parallelism\": 1,\n  \
         \"note\": \"single-threaded end-to-end prober wall-clock; dense row pins the \
         default im2col+GEMM backend via auto_sparse=false, sparse row is the default \
         device config (auto CSC on stripe probes); orthogonal to -j probe fan-out\",\n  \
         \"results_bit_identical\": true,\n  \"victims\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(BENCH_JSON, json).expect("write BENCH_sparse_fwd.json");
    println!("wrote {BENCH_JSON}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);
