//! Bench for E5 (§8.2 finalization): prints the solution-space table and
//! times the first-layer range computation.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::{experiments::final_solution_table, Scale};
use huffduff_core::solution::{first_layer_k_range, CodecModel};

fn bench(c: &mut Criterion) {
    println!("{}", final_solution_table(Scale::Fast));
    c.bench_function("first_layer_k_range", |b| {
        b.iter(|| {
            first_layer_k_range(
                std::hint::black_box(9_000),
                7,
                3,
                &CodecModel::default(),
                0.6,
                1024,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
