//! Bench for E2 (§5.2): prints the observability table and times the
//! Monte-Carlo estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::{experiments::observability_table, Scale};
use huffduff_core::boundary_obs::{observability_rate, ObservabilityConfig};

fn bench(c: &mut Criterion) {
    println!("{}", observability_table(Scale::Fast));
    let cfg = ObservabilityConfig {
        trials: 200,
        ..Default::default()
    };
    c.bench_function("observability_200_trials", |b| {
        b.iter(|| observability_rate(std::hint::black_box(&cfg), 7))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
