//! Codec ablation bench: prints the codec comparison and times the bitmap
//! encoder on a large activation tensor.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::{experiments::codec_ablation, Scale};
use hd_tensor::CompressionScheme;

fn bench(c: &mut Criterion) {
    println!("{}", codec_ablation(Scale::Fast));
    let mut values = vec![0.0f32; 512 * 16 * 16];
    for (i, v) in values.iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 1.0;
        }
    }
    for scheme in [
        CompressionScheme::Bitmap,
        CompressionScheme::RunLength { run_bits: 5 },
        CompressionScheme::Csc { offset_bits: 10 },
    ] {
        c.bench_function(&format!("encode_{scheme}_128k_elems"), |b| {
            b.iter(|| scheme.encoded_size(std::hint::black_box(&values), 8))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
