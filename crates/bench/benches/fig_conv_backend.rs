//! Bench for the convolution kernels: times every VGG-S conv layer shape
//! under the `Direct` loop and the `Im2colGemm` backend — with the SIMD
//! dispatcher on and forced to scalar — plus the INT8 `qconv2d` kernel,
//! with dense and paper-style pruned weights. Asserts that the backends
//! and both SIMD paths are bit-identical, and writes the wall-clock
//! numbers to `BENCH_conv_gemm.json` at the repository root.
//!
//! ```text
//! cargo bench -p hd-bench --bench fig_conv_backend
//! HD_BENCH_SMOKE=1 cargo bench -p hd-bench --bench fig_conv_backend   # CI
//! HD_BENCH_GUARD=1 cargo bench -p hd-bench --bench fig_conv_backend   # guard
//! ```
//!
//! Smoke mode benches only the first and largest layers and skips the JSON
//! write (so CI cannot clobber the checked-in full-run artifact), which
//! keeps the run to seconds while still exercising every kernel end to end.
//! `HD_BENCH_GUARD=1` re-times the largest layer's SIMD GEMM and INT8
//! kernels and fails if either regressed more than 2% over the recorded
//! artifact (skipped with a notice when the recording host's ISA differs).

use criterion::{criterion_group, criterion_main, Criterion};
use hd_dnn::graph::{Op, ValueShape};
use hd_tensor::conv::{conv2d, Conv2dCfg, ConvBackend};
use hd_tensor::gemm::{gemm, GemmBlocking};
use hd_tensor::qconv::{qconv2d, QConvParams};
use hd_tensor::qtensor::{QTensor3, QTensor4, QuantParams};
use hd_tensor::{simd, Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::Instant;

/// One VGG-S convolution workload: input tensor + weights + cfg skeleton.
struct Layer {
    name: String,
    input: Tensor3,
    weights: Tensor4,
    stride: usize,
    /// Fraction of weights zeroed in the pruned variant.
    sparsity: f64,
}

/// Extracts every conv layer shape from the VGG-S zoo graph and
/// materializes seed-pinned dense inputs and He-initialized weights.
fn vgg_s_layers() -> Vec<Layer> {
    let net = hd_dnn::zoo::vgg_s(10);
    let mut layers = Vec::new();
    for (pos, &id) in net.conv_nodes().iter().enumerate() {
        let node = &net.nodes()[id];
        let Op::Conv(spec) = &node.op else { continue };
        let ValueShape::Map(shape) = net.value_shape(node.inputs[0]) else {
            continue;
        };
        let (c, h, w) = (shape.c, shape.h, shape.w);
        let mut input = Tensor3::zeros(c, h, w);
        let mut rng = StdRng::seed_from_u64(0xC0DE + pos as u64);
        input.fill_uniform(&mut rng, 0.05, 1.0);
        let mut weights = Tensor4::zeros(spec.out_channels, c, spec.kernel, spec.kernel);
        weights.init_he(&mut StdRng::seed_from_u64(0xF1EE + pos as u64));
        layers.push(Layer {
            name: format!(
                "{}_{}x{}x{}x{}",
                net.name(id),
                spec.out_channels,
                c,
                spec.kernel,
                spec.kernel
            ),
            input,
            weights,
            stride: spec.stride,
            // Paper-shaped profile: first layer lightly pruned, interior heavily.
            sparsity: if pos == 0 { 0.45 } else { 0.7 },
        });
    }
    layers
}

/// Zeroes `sparsity` of the weights (element-wise, seed-pinned).
fn pruned(weights: &Tensor4, sparsity: f64, seed: u64) -> Tensor4 {
    let mut w = weights.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    for v in w.data_mut().iter_mut() {
        if rng.gen_range(0.0..1.0) < sparsity as f32 {
            *v = 0.0;
        }
    }
    w
}

/// INT8 version of one workload: affine-quantized input, symmetric
/// per-channel weights, and requantization parameters calibrated from the
/// f32 output range (zero bias — the bench times the kernel, not a net).
fn quantize_workload(x: &Tensor3, w: &Tensor4, cfg: &Conv2dCfg) -> (QTensor3, QConvParams) {
    let range = |data: &[f32]| {
        data.iter()
            .fold((0.0f32, 0.0f32), |(lo, hi), &v| (lo.min(v), hi.max(v)))
    };
    let (lo, hi) = range(x.data());
    let in_qp = QuantParams::from_range(lo, hi);
    let qx = QTensor3::quantize(x, in_qp);
    let qw = QTensor4::quantize(w);
    let out = conv2d(x, w, None, cfg);
    let (lo, hi) = range(out.data());
    let out_qp = QuantParams::from_range(lo, hi);
    let multipliers: Vec<f32> = qw
        .scales()
        .iter()
        .map(|sw| in_qp.scale * sw / out_qp.scale)
        .collect();
    let bias_q = vec![0i32; qw.k()];
    (
        qx,
        QConvParams {
            weight: qw,
            bias_q,
            multipliers,
            out_qp,
        },
    )
}

/// Times one closure under criterion, recording every sample (first
/// sample dropped as warmup) and returning the last result.
fn timed<T: Send>(c: &mut Criterion, id: &str, f: impl Fn() -> T + Sync) -> (T, Vec<f64>) {
    let times = Mutex::new(Vec::new());
    let last = Mutex::new(None);
    c.bench_function(id, |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let out = f();
            times.lock().unwrap().push(t0.elapsed().as_secs_f64());
            *last.lock().unwrap() = Some(out);
        })
    });
    let mut times = times.into_inner().unwrap();
    if times.len() > 1 {
        times.remove(0); // warmup sample
    }
    (last.into_inner().unwrap().expect("kernel ran"), times)
}

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_conv_gemm.json");

/// Times the guard layer's dense SIMD GEMM conv and INT8 conv: warmup,
/// then best of five runs. Used by both the recorder (to stamp
/// `guard_*_ms` into the artifact) and the guard (to check against it),
/// so the two numbers come from the identical procedure.
fn guard_measure(guard_layer: &str) -> (f64, f64) {
    let layer = vgg_s_layers()
        .into_iter()
        .find(|l| l.name == guard_layer)
        .expect("guard layer exists in the zoo");
    let cfg = Conv2dCfg::new(layer.stride, hd_tensor::conv::Padding::Same)
        .with_backend(ConvBackend::Im2colGemm);
    let (qx, qp) = quantize_workload(&layer.input, &layer.weights, &cfg);
    let best_of = |f: &dyn Fn()| {
        f(); // warmup
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let gemm_ms = best_of(&|| {
        conv2d(&layer.input, &layer.weights, None, &cfg);
    });
    let int8_ms = best_of(&|| {
        qconv2d(&qx, &qp, &cfg);
    });
    (gemm_ms, int8_ms)
}

/// `HD_BENCH_GUARD=1`: the largest layer's dense SIMD GEMM and INT8
/// kernels must stay within 2% of the recorded artifact. Best of five
/// measured runs after a warmup, against a baseline recorded with the
/// same procedure, so scheduler noise on a loaded host cannot easily
/// produce a false regression. Skipped (loudly) when the host ISA
/// differs from the recording.
fn kernel_regression_guard() {
    use hd_obs::json::Json;
    let text = std::fs::read_to_string(BENCH_JSON).expect("BENCH_conv_gemm.json missing");
    let json = Json::parse(&text).expect("BENCH_conv_gemm.json is valid JSON");
    let recorded_isa = json
        .get("isa")
        .and_then(|v| v.as_str())
        .expect("isa recorded");
    if recorded_isa != simd::active_isa() {
        println!(
            "guard: skipped — artifact recorded on `{recorded_isa}`, host runs `{}`",
            simd::active_isa()
        );
        return;
    }
    let guard_layer = json
        .get("guard_layer")
        .and_then(|v| v.as_str())
        .expect("guard_layer recorded");
    // Baselines recorded by `guard_measure` itself at record time, so
    // check and record use the exact same measurement procedure.
    let gemm_baseline = json
        .get("guard_gemm_ms")
        .and_then(|v| v.as_f64())
        .expect("guard_gemm_ms recorded");
    let int8_baseline = json
        .get("guard_int8_ms")
        .and_then(|v| v.as_f64())
        .expect("guard_int8_ms recorded");
    let (gemm_ms, int8_ms) = guard_measure(guard_layer);
    for (name, got, baseline) in [
        ("simd gemm", gemm_ms, gemm_baseline),
        ("int8 qconv", int8_ms, int8_baseline),
    ] {
        let limit = baseline * 1.02;
        println!("guard: {guard_layer} {name} {got:.3} ms (recorded {baseline:.3} ms, limit {limit:.3} ms)");
        assert!(
            got <= limit,
            "{name} regressed more than 2% on {guard_layer}: {got:.3} ms vs recorded {baseline:.3} ms"
        );
    }
}

fn bench(c: &mut Criterion) {
    if std::env::var("HD_BENCH_GUARD").is_ok() {
        kernel_regression_guard();
        return;
    }
    let smoke = std::env::var("HD_BENCH_SMOKE").is_ok();
    let mut layers = vgg_s_layers();
    if smoke {
        // First (stem) and last (largest, conv5_3 at 512x512x3x3) layers only.
        let last = layers.len() - 1;
        layers = vec![layers.remove(last), layers.remove(0)];
        layers.reverse();
    }

    // Guard baselines are measured FIRST, before the criterion sweep
    // heats the machine, so they match the state a standalone
    // `HD_BENCH_GUARD=1` run sees. The guard layer is the largest by
    // weight count (first on ties, matching the loop below).
    let guard_baselines = if smoke {
        None
    } else {
        let mut g = &layers[0];
        for l in &layers {
            if l.weights.len() > g.weights.len() {
                g = l;
            }
        }
        Some(guard_measure(&g.name))
    };

    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    let mut rows = Vec::new();
    let mut kernel_rows = Vec::new();
    let mut largest: Option<(usize, f64, String)> = None; // (weight count, speedup, layer)
                                                          // Per-layer SIMD-over-scalar ratios of the bare GEMM kernel.
    let mut gemm_ratios = Vec::new();

    for (pos, layer) in layers.iter().enumerate() {
        for (variant, weights) in [
            ("dense", layer.weights.clone()),
            (
                "pruned",
                pruned(&layer.weights, layer.sparsity, 0x5EED + pos as u64),
            ),
        ] {
            let direct_cfg = Conv2dCfg::new(layer.stride, hd_tensor::conv::Padding::Same)
                .with_backend(ConvBackend::Direct);
            let gemm_cfg = direct_cfg.with_backend(ConvBackend::Im2colGemm);
            let (qx, qp) = quantize_workload(&layer.input, &weights, &gemm_cfg);
            let mut outputs: Vec<(bool, Tensor3, Vec<i8>)> = Vec::new();

            for simd_on in [true, false] {
                simd::set_enabled(simd_on);
                let tag = if simd_on { "simd" } else { "scalar" };
                let (d_out, d_times) =
                    timed(c, &format!("{}_{variant}_direct_{tag}", layer.name), || {
                        conv2d(&layer.input, &weights, None, &direct_cfg)
                    });
                let (g_out, g_times) =
                    timed(c, &format!("{}_{variant}_gemm_{tag}", layer.name), || {
                        conv2d(&layer.input, &weights, None, &gemm_cfg)
                    });
                let (q_out, q_times) =
                    timed(c, &format!("{}_{variant}_int8_{tag}", layer.name), || {
                        qconv2d(&qx, &qp, &gemm_cfg)
                    });
                assert_eq!(
                    d_out.data(),
                    g_out.data(),
                    "backends diverged on {} ({variant}, {tag})",
                    layer.name
                );
                let (d_ms, g_ms, q_ms) = (
                    mean(&d_times) * 1e3,
                    mean(&g_times) * 1e3,
                    mean(&q_times) * 1e3,
                );
                let speedup = d_ms / g_ms;
                println!(
                    "{} [{variant}, {tag}]: direct {d_ms:.3} ms, gemm {g_ms:.3} ms \
                     ({speedup:.2}x), int8 {q_ms:.3} ms",
                    layer.name
                );
                if simd_on && variant == "dense" {
                    let wcount = weights.len();
                    if largest.as_ref().is_none_or(|(n, _, _)| wcount > *n) {
                        largest = Some((wcount, speedup, layer.name.clone()));
                    }
                }
                rows.push(format!(
                    "    {{ \"layer\": \"{}\", \"weights\": \"{variant}\", \"simd\": {simd_on}, \
                     \"direct_ms\": {d_ms:.3}, \"gemm_ms\": {g_ms:.3}, \"speedup\": {speedup:.3}, \
                     \"int8_ms\": {q_ms:.3} }}",
                    layer.name
                ));
                outputs.push((simd_on, g_out, q_out.data().to_vec()));
            }
            simd::set_enabled(true);

            // The whole point of the no-FMA lane discipline: both SIMD
            // paths produce the same bytes, f32 and INT8 alike.
            let [(_, g_simd, q_simd), (_, g_scalar, q_scalar)] = &outputs[..] else {
                unreachable!("two SIMD modes benched");
            };
            assert_eq!(
                g_simd.data(),
                g_scalar.data(),
                "SIMD and scalar GEMM diverged on {} ({variant})",
                layer.name
            );
            assert_eq!(
                q_simd, q_scalar,
                "SIMD and scalar INT8 diverged on {} ({variant})",
                layer.name
            );
        }

        // Bare GEMM kernel at this layer's im2col dimensions: m = output
        // channels, k = C*R*S, n = out_h*out_w. The conv-level rows above
        // include the (scalar, mode-independent) im2col packing, so the
        // kernel speedup is measured on the kernel alone.
        let (m, k) = (layer.weights.k(), layer.weights.len() / layer.weights.k());
        let out_h = hd_tensor::conv::conv_out_dim(
            layer.input.h(),
            layer.weights.r(),
            layer.stride,
            hd_tensor::conv::Padding::Same,
        );
        let out_w = hd_tensor::conv::conv_out_dim(
            layer.input.w(),
            layer.weights.s(),
            layer.stride,
            hd_tensor::conv::Padding::Same,
        );
        let n = out_h * out_w;
        let mut rng = StdRng::seed_from_u64(0xABCD ^ pos as u64);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let blk = GemmBlocking::default();
        let mut kernel_out = Vec::new();
        let mut kernel_ms = [0.0f64; 2];
        for (slot, simd_on) in [true, false].into_iter().enumerate() {
            simd::set_enabled(simd_on);
            let tag = if simd_on { "simd" } else { "scalar" };
            let (out, times) = timed(c, &format!("{}_gemm_kernel_{tag}", layer.name), || {
                let mut cmat = vec![0.0f32; m * n];
                gemm(m, n, k, &a, k, &b, n, &mut cmat, n, &blk);
                cmat
            });
            kernel_ms[slot] = mean(&times) * 1e3;
            kernel_out.push(out);
        }
        simd::set_enabled(true);
        assert_eq!(
            kernel_out[0], kernel_out[1],
            "SIMD and scalar GEMM kernel diverged on {}",
            layer.name
        );
        let ratio = kernel_ms[1] / kernel_ms[0];
        println!(
            "{} gemm kernel {m}x{k}x{n}: simd {:.3} ms, scalar {:.3} ms, {ratio:.2}x",
            layer.name, kernel_ms[0], kernel_ms[1]
        );
        gemm_ratios.push(ratio);
        kernel_rows.push(format!(
            "    {{ \"layer\": \"{}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \
             \"simd_ms\": {:.3}, \"scalar_ms\": {:.3}, \"speedup\": {ratio:.3} }}",
            layer.name, kernel_ms[0], kernel_ms[1]
        ));
    }

    let geomean =
        (gemm_ratios.iter().map(|r| r.ln()).sum::<f64>() / gemm_ratios.len() as f64).exp();
    let (_, largest_speedup, guard_layer) = largest.expect("at least one layer benched");
    println!(
        "SIMD-over-scalar GEMM geomean {geomean:.2}x (ISA {}), largest-layer dense \
         gemm-over-direct {largest_speedup:.2}x",
        simd::active_isa()
    );
    if smoke {
        // Don't clobber the checked-in full-run artifact with smoke numbers.
        println!("smoke mode: skipping BENCH_conv_gemm.json");
        return;
    }
    let (guard_gemm_ms, guard_int8_ms) = guard_baselines.expect("measured before the sweep");
    let json = format!(
        "{{\n  \"bench\": \"fig_conv_backend\",\n  \"victim\": \"VGG-S conv layer shapes\",\n  \
         \"smoke\": {smoke},\n  \"isa\": \"{isa}\",\n  \"simd_available\": {avail},\n  \
         \"gemm_simd_speedup_geomean\": {geomean:.3},\n  \
         \"largest_layer_dense_speedup\": {largest_speedup:.3},\n  \
         \"guard_layer\": \"{guard_layer}\",\n  \
         \"guard_gemm_ms\": {guard_gemm_ms:.3},\n  \"guard_int8_ms\": {guard_int8_ms:.3},\n  \
         \"results_bit_identical\": true,\n  \"gemm_kernel\": [\n{}\n  ],\n  \
         \"layers\": [\n{}\n  ]\n}}\n",
        kernel_rows.join(",\n"),
        rows.join(",\n"),
        isa = simd::active_isa(),
        avail = simd::simd_available(),
    );
    std::fs::write(BENCH_JSON, json).expect("write BENCH_conv_gemm.json");
    println!("wrote {BENCH_JSON} (SIMD GEMM geomean {geomean:.2}x)");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);
