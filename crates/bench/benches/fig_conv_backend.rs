//! Bench for the im2col+GEMM convolution backend: times every VGG-S conv
//! layer shape under the `Direct` loop and the `Im2colGemm` backend, with
//! dense and paper-style pruned weights, asserts the outputs are
//! bit-identical, and writes the wall-clock numbers to
//! `BENCH_conv_gemm.json` at the repository root.
//!
//! ```text
//! cargo bench -p hd-bench --bench fig_conv_backend
//! HD_BENCH_SMOKE=1 cargo bench -p hd-bench --bench fig_conv_backend   # CI
//! ```
//!
//! Smoke mode benches only the first and largest layers and skips the JSON
//! write (so CI cannot clobber the checked-in full-run artifact), which
//! keeps the run to seconds while still exercising both backends end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_dnn::graph::{Op, ValueShape};
use hd_tensor::conv::{conv2d, Conv2dCfg, ConvBackend};
use hd_tensor::{Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::Instant;

/// One VGG-S convolution workload: input tensor + weights + cfg skeleton.
struct Layer {
    name: String,
    input: Tensor3,
    weights: Tensor4,
    stride: usize,
    /// Fraction of weights zeroed in the pruned variant.
    sparsity: f64,
}

/// Extracts every conv layer shape from the VGG-S zoo graph and
/// materializes seed-pinned dense inputs and He-initialized weights.
fn vgg_s_layers() -> Vec<Layer> {
    let net = hd_dnn::zoo::vgg_s(10);
    let mut layers = Vec::new();
    for (pos, &id) in net.conv_nodes().iter().enumerate() {
        let node = &net.nodes()[id];
        let Op::Conv(spec) = &node.op else { continue };
        let ValueShape::Map(shape) = net.value_shape(node.inputs[0]) else {
            continue;
        };
        let (c, h, w) = (shape.c, shape.h, shape.w);
        let mut input = Tensor3::zeros(c, h, w);
        let mut rng = StdRng::seed_from_u64(0xC0DE + pos as u64);
        input.fill_uniform(&mut rng, 0.05, 1.0);
        let mut weights = Tensor4::zeros(spec.out_channels, c, spec.kernel, spec.kernel);
        weights.init_he(&mut StdRng::seed_from_u64(0xF1EE + pos as u64));
        layers.push(Layer {
            name: format!(
                "{}_{}x{}x{}x{}",
                net.name(id),
                spec.out_channels,
                c,
                spec.kernel,
                spec.kernel
            ),
            input,
            weights,
            stride: spec.stride,
            // Paper-shaped profile: first layer lightly pruned, interior heavily.
            sparsity: if pos == 0 { 0.45 } else { 0.7 },
        });
    }
    layers
}

/// Zeroes `sparsity` of the weights (element-wise, seed-pinned).
fn pruned(weights: &Tensor4, sparsity: f64, seed: u64) -> Tensor4 {
    let mut w = weights.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    for v in w.data_mut().iter_mut() {
        if rng.gen_range(0.0..1.0) < sparsity as f32 {
            *v = 0.0;
        }
    }
    w
}

/// Times one conv under criterion, recording every sample.
fn timed_conv(
    c: &mut Criterion,
    id: &str,
    x: &Tensor3,
    w: &Tensor4,
    cfg: &Conv2dCfg,
) -> (Tensor3, Vec<f64>) {
    let times = Mutex::new(Vec::new());
    let last = Mutex::new(None);
    c.bench_function(id, |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let out = conv2d(x, w, None, cfg);
            times.lock().unwrap().push(t0.elapsed().as_secs_f64());
            *last.lock().unwrap() = Some(out);
        })
    });
    let mut times = times.into_inner().unwrap();
    if times.len() > 1 {
        times.remove(0); // warmup sample
    }
    (last.into_inner().unwrap().expect("conv ran"), times)
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("HD_BENCH_SMOKE").is_ok();
    let mut layers = vgg_s_layers();
    if smoke {
        // First (stem) and last (largest, conv5_3 at 512x512x3x3) layers only.
        let last = layers.len() - 1;
        layers = vec![layers.remove(last), layers.remove(0)];
        layers.reverse();
    }

    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    let mut rows = Vec::new();
    let mut largest: Option<(usize, f64)> = None; // (weight count, speedup)

    for (pos, layer) in layers.iter().enumerate() {
        for (variant, weights) in [
            ("dense", layer.weights.clone()),
            (
                "pruned",
                pruned(&layer.weights, layer.sparsity, 0x5EED + pos as u64),
            ),
        ] {
            let direct_cfg = Conv2dCfg::new(layer.stride, hd_tensor::conv::Padding::Same)
                .with_backend(ConvBackend::Direct);
            let gemm_cfg = direct_cfg.with_backend(ConvBackend::Im2colGemm);
            let (d_out, d_times) = timed_conv(
                c,
                &format!("{}_{variant}_direct", layer.name),
                &layer.input,
                &weights,
                &direct_cfg,
            );
            let (g_out, g_times) = timed_conv(
                c,
                &format!("{}_{variant}_gemm", layer.name),
                &layer.input,
                &weights,
                &gemm_cfg,
            );
            assert_eq!(
                d_out.data(),
                g_out.data(),
                "backends diverged on {} ({variant})",
                layer.name
            );
            let (d_ms, g_ms) = (mean(&d_times) * 1e3, mean(&g_times) * 1e3);
            let speedup = d_ms / g_ms;
            println!(
                "{} [{variant}]: direct {d_ms:.3} ms, gemm {g_ms:.3} ms, {speedup:.2}x",
                layer.name
            );
            if variant == "dense" {
                let wcount = weights.len();
                if largest.is_none_or(|(n, _)| wcount > n) {
                    largest = Some((wcount, speedup));
                }
            }
            rows.push(format!(
                "    {{ \"layer\": \"{}\", \"weights\": \"{variant}\", \
                 \"direct_ms\": {d_ms:.3}, \"gemm_ms\": {g_ms:.3}, \"speedup\": {speedup:.3} }}",
                layer.name
            ));
        }
    }

    let (_, largest_speedup) = largest.expect("at least one layer benched");
    if smoke {
        // Don't clobber the checked-in full-run artifact with smoke numbers.
        println!("smoke mode: skipping BENCH_conv_gemm.json (largest-layer dense speedup {largest_speedup:.2}x)");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"fig_conv_backend\",\n  \"victim\": \"VGG-S conv layer shapes\",\n  \
         \"smoke\": {smoke},\n  \"largest_layer_dense_speedup\": {largest_speedup:.3},\n  \
         \"results_bit_identical\": true,\n  \"layers\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_conv_gemm.json");
    std::fs::write(path, json).expect("write BENCH_conv_gemm.json");
    println!("wrote {path} (largest-layer dense speedup {largest_speedup:.2}x)");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);
