//! Defence + probe-budget ablation bench: prints both ablation tables and
//! times pattern refinement.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::experiments::{defence_ablation, probe_budget_ablation};
use hd_bench::Scale;
use huffduff_core::pattern::Pattern;

fn bench(c: &mut Criterion) {
    println!("{}", defence_ablation(Scale::Fast));
    println!("{}", probe_budget_ablation(Scale::Fast));

    let patterns: Vec<Pattern> = (0..64u64)
        .map(|s| Pattern::of(&(0..24).map(|i| (i as u64 * s) % 7).collect::<Vec<_>>()))
        .collect();
    c.bench_function("pattern_refine_64x24", |b| {
        b.iter(|| Pattern::refine_all(std::hint::black_box(&patterns)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
