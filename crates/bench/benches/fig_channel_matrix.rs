//! Artifact bench for the channel × defence matrix: runs the full
//! zoo × observation-channel × defence attack grid and writes one JSON row
//! per cell (per-stage recovery, probe budget) to
//! `BENCH_channel_matrix.json` at the repository root.
//!
//! ```text
//! cargo bench -p hd-bench --bench fig_channel_matrix
//! HD_BENCH_SMOKE=1 cargo bench -p hd-bench --bench fig_channel_matrix   # CI
//! ```
//!
//! Smoke mode shrinks the grid to one zoo entry and the {none, nn-rearch}
//! defence pair, and skips the JSON write so CI cannot clobber the
//! checked-in full-run artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::experiments::{channel_matrix_cells, render_channel_matrix, CHANNEL_MATRIX_WIDTH};
use hd_bench::Scale;
use std::time::Instant;

const BENCH_JSON: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_channel_matrix.json"
);

fn bench(_c: &mut Criterion) {
    let smoke = std::env::var("HD_BENCH_SMOKE").is_ok();
    let scale = if smoke { Scale::Smoke } else { Scale::Full };
    let t0 = Instant::now();
    let cells = channel_matrix_cells(scale);
    let wall_s = t0.elapsed().as_secs_f64();
    println!("{}", render_channel_matrix(&cells));
    println!("{} cells in {wall_s:.1}s ({scale:?} scale)", cells.len());

    if smoke {
        println!("smoke mode: skipping BENCH_channel_matrix.json");
        return;
    }
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"victim\": \"{}\", \"channel\": \"{}\", \"defence\": \"{}\", \
                 \"probes_used\": {}, \"geometry_correct\": {}, \"geometry_total\": {}, \
                 \"conv_correct\": {}, \"conv_total\": {}, \"ratios_recovered\": {}, \
                 \"solution_count\": {}, \"k1_hit\": {} }}",
                c.model.name(),
                c.channel.label(),
                c.defence,
                c.probes_used,
                c.geometry_correct,
                c.geometry_total,
                c.conv_correct,
                c.conv_total,
                c.ratios_recovered,
                c.solution_count,
                c.k1_hit,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig_channel_matrix\",\n  \"width\": {CHANNEL_MATRIX_WIDTH},\n  \
         \"wall_s\": {wall_s:.1},\n  \
         \"note\": \"attack-stage recovery per zoo x observation-channel x defence cell; \
         width-scaled victims on the im2col+GEMM backend; full = paper channel, gemm = \
         Cache-Telepathy-style GEMM dimensions; nn-rearch pads scheduler-visible dims to \
         the tile, degrading the gemm channel while volume channels pass through\",\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(BENCH_JSON, json).expect("write BENCH_channel_matrix.json");
    println!("wrote {BENCH_JSON}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);
