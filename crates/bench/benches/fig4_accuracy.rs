//! Bench for E6 (Figure 4): prints the fast-scale accuracy figure and
//! times one candidate training epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::experiments::{fig4_accuracy, prepare_models};
use hd_bench::Scale;
use hd_dnn::data::SyntheticImages;
use hd_dnn::graph::Params;
use hd_dnn::train::{train, TrainConfig};

fn bench(c: &mut Criterion) {
    let prepared = prepare_models(Scale::Smoke, 42);
    println!("{}", fig4_accuracy(&prepared));

    let gen = SyntheticImages::cifar_like(1);
    let data = gen.dataset(16, 0);
    let net = hd_dnn::zoo::vgg_s_scaled(10, 0.0625);
    c.bench_function("mini_vgg_train_epoch_16imgs", |b| {
        b.iter(|| {
            let mut params = Params::init(&net, 2);
            train(
                &net,
                &mut params,
                std::hint::black_box(&data),
                &TrainConfig {
                    epochs: 1,
                    lr: 0.01,
                    momentum: 0.9,
                    weight_decay: 0.0,
                    lr_decay: 1.0,
                },
                None,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
