//! Artifact bench for the pruning-mode robustness matrix: runs the full
//! zoo × {unstructured, N:M, structured} × defence × backend attack grid
//! and writes one JSON row per cell (geometry recovery, probe budget,
//! wall-clock) to `BENCH_prune_matrix.json` at the repository root.
//!
//! ```text
//! cargo bench -p hd-bench --bench fig_prune_matrix
//! HD_BENCH_SMOKE=1 cargo bench -p hd-bench --bench fig_prune_matrix   # CI
//! ```
//!
//! Smoke mode shrinks the grid to one zoo entry per pruning mode and
//! skips the JSON write so CI cannot clobber the checked-in full-run
//! artifact. The cross-backend agreement contract (cells differing only
//! in backend are indistinguishable to the prober) is asserted inside
//! [`hd_bench::experiments::render_matrix`] on every run.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::experiments::{prune_matrix_cells, render_matrix, MATRIX_WIDTH};
use hd_bench::Scale;
use std::time::Instant;

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prune_matrix.json");

fn backend_tag(b: hd_tensor::ConvBackend) -> &'static str {
    match b {
        hd_tensor::ConvBackend::Direct => "direct",
        hd_tensor::ConvBackend::Im2colGemm => "im2col-gemm",
        hd_tensor::ConvBackend::SparseCsc => "sparse-csc",
    }
}

fn bench(_c: &mut Criterion) {
    let smoke = std::env::var("HD_BENCH_SMOKE").is_ok();
    let scale = if smoke { Scale::Smoke } else { Scale::Full };
    let t0 = Instant::now();
    let cells = prune_matrix_cells(scale);
    let wall_s = t0.elapsed().as_secs_f64();
    // render_matrix asserts cross-backend agreement before printing.
    println!("{}", render_matrix(&cells));
    println!("{} cells in {wall_s:.1}s ({:?} scale)", cells.len(), scale);

    if smoke {
        println!("smoke mode: skipping BENCH_prune_matrix.json");
        return;
    }
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"victim\": \"{}\", \"pruning\": \"{}\", \"defence\": \"{}\", \
                 \"backend\": \"{}\", \"probes_used\": {}, \"geometry_correct\": {}, \
                 \"geometry_total\": {} }}",
                c.model.name(),
                c.mode.name(),
                c.defence,
                backend_tag(c.backend),
                c.probes_used,
                c.geometry_correct,
                c.geometry_total,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig_prune_matrix\",\n  \"width\": {MATRIX_WIDTH},\n  \
         \"wall_s\": {wall_s:.1},\n  \
         \"note\": \"geometry recovery and probe budget per zoo x pruning-mode x defence x \
         conv-backend cell; width-scaled victims; cells differing only in backend are \
         asserted identical (bit-identity contract)\",\n  \
         \"cross_backend_identical\": true,\n  \"cells\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(BENCH_JSON, json).expect("write BENCH_prune_matrix.json");
    println!("wrote {BENCH_JSON}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);
