//! Bench for E4 (§8.2 encoder table): prints the bandwidth-multiplier
//! table and times the encode-timing model sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_bench::victims::{paper_victim, Model};
use hd_bench::{experiments::glb_bound_table, Scale};
use hd_tensor::Tensor3;

fn bench(c: &mut Criterion) {
    println!("{}", glb_bound_table(Scale::Fast));
    let (device, _) = paper_victim(Model::ResNet18, 5);
    let image = Tensor3::full(3, 32, 32, 0.4);
    c.bench_function("resnet18_encode_timings", |b| {
        b.iter(|| device.encode_timings(std::hint::black_box(&image)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
