//! Symbolic 1-D convolution engine (paper §6.2).
//!
//! The engine predicts, for a hypothesized layer geometry, which probe
//! shifts must produce *structurally equal* outputs (same value multiset —
//! hence always the same nnz) and which are *generically distinct*.
//!
//! Rather than carrying algebraic expressions (whose monomial count grows
//! as `3^depth`), expressions are evaluated over the prime field
//! `Z_p, p = 2^61 - 1`, in [`LANES`] independent random instantiations —
//! a Schwartz–Zippel polynomial-identity test. Two cells are structurally
//! equal iff their residues match in every lane; false equalities occur
//! with probability ≈ `degree / p` per lane, squared across lanes.
//!
//! Max pooling is not algebraic; it is modelled by a *symmetric* combiner
//! (a random symmetric polynomial of the window), which preserves exactly
//! the property the prober relies on: windows that are equal as multisets
//! produce equal outputs, distinct windows produce generically distinct
//! outputs. Any extra collisions on the measured side are the usual
//! one-sided errors handled by probe refinement.

use hd_tensor::conv::{conv_out_dim, same_pad, Padding};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of independent field instantiations (identity-test lanes).
pub const LANES: usize = 2;

/// The Mersenne prime `2^61 - 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// A symbolic value: one residue per lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub [u64; LANES]);

impl Sym {
    /// The zero expression.
    pub const ZERO: Sym = Sym([0; LANES]);
}

impl std::ops::Add for Sym {
    type Output = Sym;

    /// Lane-wise addition mod p.
    fn add(self, rhs: Sym) -> Sym {
        let mut out = [0u64; LANES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            *o = addm(*a, *b);
        }
        Sym(out)
    }
}

impl std::ops::Mul for Sym {
    type Output = Sym;

    /// Lane-wise multiplication mod p.
    fn mul(self, rhs: Sym) -> Sym {
        let mut out = [0u64; LANES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            *o = mulm(*a, *b);
        }
        Sym(out)
    }
}

#[inline]
fn addm(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= P {
        s - P
    } else {
        s
    }
}

#[inline]
fn mulm(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

/// Source of fresh formal variables (random residues per lane).
#[derive(Clone, Debug)]
pub struct VarSource {
    rng: StdRng,
}

impl VarSource {
    /// Creates a deterministic variable source.
    pub fn new(seed: u64) -> Self {
        VarSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a fresh formal variable (non-zero in every lane).
    pub fn fresh(&mut self) -> Sym {
        let mut out = [0u64; LANES];
        for o in &mut out {
            *o = self.rng.gen_range(1..P);
        }
        Sym(out)
    }
}

/// A hypothesized convolution geometry for one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvHypothesis {
    /// Symmetric kernel size.
    pub kernel: usize,
    /// Symmetric stride.
    pub stride: usize,
}

/// Symbolic weights for one hypothesized conv layer: taps + affine
/// (bias / batch-norm) terms, all formal variables.
#[derive(Clone, Debug)]
pub struct SymConvLayer {
    /// Geometry.
    pub hyp: ConvHypothesis,
    taps: Vec<Sym>,
    scale: Sym,
    shift: Sym,
}

impl SymConvLayer {
    /// Instantiates a hypothesis with fresh formal weights.
    pub fn new(hyp: ConvHypothesis, vars: &mut VarSource) -> Self {
        SymConvLayer {
            hyp,
            taps: (0..hyp.kernel).map(|_| vars.fresh()).collect(),
            scale: vars.fresh(),
            shift: vars.fresh(),
        }
    }

    /// Applies the symbolic layer to a 1-D row ("same" zero padding, the
    /// common case; paper §9.1).
    pub fn apply(&self, input: &[Sym]) -> Vec<Sym> {
        let w = input.len();
        let out_w = conv_out_dim(w, self.hyp.kernel, self.hyp.stride, Padding::Same);
        let pad = same_pad(w, self.hyp.kernel, self.hyp.stride);
        let mut out = Vec::with_capacity(out_w);
        for q in 0..out_w {
            let mut acc = Sym::ZERO;
            for (s, &tap) in self.taps.iter().enumerate() {
                let ix = (q * self.hyp.stride + s) as isize - pad as isize;
                if ix < 0 || ix >= w as isize {
                    continue; // zero padding contributes nothing
                }
                acc = acc + tap * input[ix as usize];
            }
            // Affine (bias / batch norm): scale * conv + shift.
            out.push(acc * self.scale + self.shift);
        }
        out
    }
}

/// Symbolic pooling layer: symmetric window combiner.
#[derive(Clone, Debug)]
pub struct SymPoolLayer {
    /// Pooling factor (window == stride).
    pub factor: usize,
    mix: Sym,
}

impl SymPoolLayer {
    /// Instantiates a pool hypothesis.
    pub fn new(factor: usize, vars: &mut VarSource) -> Self {
        SymPoolLayer {
            factor,
            mix: vars.fresh(),
        }
    }

    /// Applies the symmetric combiner `sum(x) + mix * sum(x^2)` per window
    /// (injective on window multisets for generic `mix`). Trailing partial
    /// windows are dropped, matching the victim's `ceil_mode = False`.
    pub fn apply(&self, input: &[Sym]) -> Vec<Sym> {
        if self.factor <= 1 {
            return input.to_vec();
        }
        let out_w = input.len() / self.factor;
        let mut out = Vec::with_capacity(out_w);
        for q in 0..out_w {
            let mut s1 = Sym::ZERO;
            let mut s2 = Sym::ZERO;
            for i in 0..self.factor {
                let x = input[q * self.factor + i];
                s1 = s1 + x;
                s2 = s2 + x * x;
            }
            out.push(s1 + self.mix * s2);
        }
        out
    }
}

/// Elementwise symbolic addition of two rows (residual join).
///
/// # Panics
///
/// Panics if the rows have different lengths.
pub fn sym_add(a: &[Sym], b: &[Sym]) -> Vec<Sym> {
    assert_eq!(a.len(), b.len(), "residual rows must have equal length");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// The multiset signature of a row: the sorted value vector. Two rows have
/// equal signatures iff they are permutations of each other — the symbolic
/// counterpart of "equal nnz for every generic weight assignment".
pub fn multiset_signature(row: &[Sym]) -> Vec<Sym> {
    let mut v = row.to_vec();
    v.sort_unstable();
    v
}

/// Builds the 1-D probe family: for each shift `t`, a width-`w` row that is
/// zero except for a single formal feature value at position `t`
/// (the `A(0, 1)` pattern of §6.1; deeper layers see its images under the
/// recovered prefix network).
pub fn impulse_rows(w: usize, shifts: usize, vars: &mut VarSource) -> Vec<Vec<Sym>> {
    let feature = vars.fresh(); // same feature value at every shift
    (0..shifts)
        .map(|t| {
            let mut row = vec![Sym::ZERO; w];
            if t < w {
                row[t] = feature;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn letters(rows: &[Vec<Sym>]) -> Pattern {
        let sigs: Vec<Vec<Sym>> = rows.iter().map(|r| multiset_signature(r)).collect();
        Pattern::of(&sigs)
    }

    #[test]
    fn field_arithmetic() {
        let a = Sym([P - 1; LANES]);
        let b = Sym([2; LANES]);
        assert_eq!((a + b).0[0], 1);
        assert_eq!((a * b).0[0], P - 2); // (p-1)*2 = 2p-2 = p-2 (mod p)
    }

    #[test]
    fn conv3_stride1_pattern_matches_fig2() {
        // Paper Fig. 2: a 3-tap filter over impulse probes yields nnz
        // 2, 3, 3, … — the edge shift is distinct, later shifts converge.
        let mut vars = VarSource::new(1);
        let rows = impulse_rows(12, 6, &mut vars);
        let layer = SymConvLayer::new(
            ConvHypothesis {
                kernel: 3,
                stride: 1,
            },
            &mut vars,
        );
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| layer.apply(r)).collect();
        assert_eq!(letters(&out).to_string(), "ABBBBB");
    }

    #[test]
    fn pointwise_pattern_is_all_equal() {
        let mut vars = VarSource::new(2);
        let rows = impulse_rows(10, 5, &mut vars);
        let layer = SymConvLayer::new(
            ConvHypothesis {
                kernel: 1,
                stride: 1,
            },
            &mut vars,
        );
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| layer.apply(r)).collect();
        assert_eq!(letters(&out).to_string(), "AAAAA");
    }

    #[test]
    fn conv5_has_longer_prefix_than_conv3() {
        let mut vars = VarSource::new(3);
        let rows = impulse_rows(16, 8, &mut vars);
        let l3 = SymConvLayer::new(
            ConvHypothesis {
                kernel: 3,
                stride: 1,
            },
            &mut vars,
        );
        let l5 = SymConvLayer::new(
            ConvHypothesis {
                kernel: 5,
                stride: 1,
            },
            &mut vars,
        );
        let p3 = letters(&rows.iter().map(|r| l3.apply(r)).collect::<Vec<_>>());
        let p5 = letters(&rows.iter().map(|r| l5.apply(r)).collect::<Vec<_>>());
        // A 5-tap filter loses taps at shifts 0 AND 1, a 3-tap only at 0.
        assert_eq!(p3.to_string(), "ABBBBBBB");
        assert_eq!(p5.to_string(), "ABCCCCCC");
    }

    #[test]
    fn conv3_plus_pool2_pattern_is_periodic() {
        // Paper §6.2: conv followed by 2x pooling makes the tail alternate
        // with period 2 (pooling phase), unlike the conv-only "ABB…" tail.
        let mut vars = VarSource::new(4);
        let rows = impulse_rows(16, 8, &mut vars);
        let conv = SymConvLayer::new(
            ConvHypothesis {
                kernel: 3,
                stride: 1,
            },
            &mut vars,
        );
        let pool = SymPoolLayer::new(2, &mut vars);
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| pool.apply(&conv.apply(r))).collect();
        assert_eq!(letters(&out).to_string(), "ABCBCBCB");
    }

    #[test]
    fn stride2_gives_period2_pattern() {
        let mut vars = VarSource::new(5);
        let rows = impulse_rows(16, 8, &mut vars);
        let conv = SymConvLayer::new(
            ConvHypothesis {
                kernel: 3,
                stride: 2,
            },
            &mut vars,
        );
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| conv.apply(r)).collect();
        let p = letters(&out).to_string();
        // After the edge prefix, letters alternate with period 2.
        let tail: Vec<char> = p.chars().rev().take(4).collect();
        assert_eq!(tail[0], tail[2], "pattern {p} lacks period 2");
        assert_eq!(tail[1], tail[3], "pattern {p} lacks period 2");
        assert_ne!(tail[0], tail[1], "pattern {p} should alternate");
    }

    #[test]
    fn two_layer_stack_still_converges() {
        // Boundary effect survives downstream layers (paper §5.3).
        let mut vars = VarSource::new(6);
        let rows = impulse_rows(20, 10, &mut vars);
        let l1 = SymConvLayer::new(
            ConvHypothesis {
                kernel: 3,
                stride: 1,
            },
            &mut vars,
        );
        let l2 = SymConvLayer::new(
            ConvHypothesis {
                kernel: 3,
                stride: 1,
            },
            &mut vars,
        );
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| l2.apply(&l1.apply(r))).collect();
        let p = letters(&out);
        // Converges after a longer prefix (two layers of truncation).
        let s = p.to_string();
        let last = s.chars().last().unwrap();
        assert!(s.ends_with(&format!("{last}{last}{last}")), "{s}");
        // And distinguishes more edge shifts than a single 3-tap layer.
        assert!(p.class_count() > 3);
    }

    #[test]
    fn deterministic_in_seed() {
        let mk = |seed| {
            let mut vars = VarSource::new(seed);
            let rows = impulse_rows(8, 4, &mut vars);
            let l = SymConvLayer::new(
                ConvHypothesis {
                    kernel: 3,
                    stride: 1,
                },
                &mut vars,
            );
            rows.iter().map(|r| l.apply(r)).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn sym_add_lengths_checked() {
        let a = vec![Sym::ZERO; 4];
        let b = vec![Sym::ZERO; 4];
        assert_eq!(sym_add(&a, &b).len(), 4);
    }

    #[test]
    fn multiset_signature_is_permutation_invariant() {
        let mut vars = VarSource::new(9);
        let x = vars.fresh();
        let y = vars.fresh();
        let a = vec![x, y, Sym::ZERO];
        let b = vec![Sym::ZERO, y, x];
        assert_eq!(multiset_signature(&a), multiset_signature(&b));
        let c = vec![x, x, Sym::ZERO];
        assert_ne!(multiset_signature(&a), multiset_signature(&c));
    }

    #[test]
    fn pool_factor_one_is_identity() {
        let mut vars = VarSource::new(10);
        let row: Vec<Sym> = (0..5).map(|_| vars.fresh()).collect();
        let pool = SymPoolLayer::new(1, &mut vars);
        assert_eq!(pool.apply(&row), row);
    }
}
