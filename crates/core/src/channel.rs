//! Pluggable observation channels: the attacker-facing boundary.
//!
//! HuffDuff's original threat model hands the attacker one fixed pair of
//! observables — the DRAM write trace plus the psum-encode timing window.
//! This module generalizes that boundary into an [`ObservationModel`]: an
//! object-safe trait mediating *everything* the attacker may learn from one
//! inference. The prober and the end-to-end attack consume observations,
//! never raw traces, so restricted or entirely different side channels plug
//! in without touching the recovery logic.
//!
//! Four models ship with the crate:
//!
//! * [`FullChannel`] — trace + timing, the paper's channel. Bit-identical
//!   to the pre-redesign attack *by construction*: its observation carries
//!   exactly the fields the prober used to read off [`TraceAnalysis`], and
//!   every projection-only field ([`LayerEvidence::gemm`]) stays `None`.
//! * [`TraceOnly`] — transfer volumes and dataflow without timestamps
//!   (an attacker on a bus probe with no cycle-accurate clock).
//! * [`TimingOnly`] — per-layer encode windows without addresses or sizes
//!   (an attacker co-located enough to time, not to read, the bus).
//! * [`GemmDims`] — the Cache-Telepathy channel (Yan et al.): the
//!   `(m, k, n)` dimensions of each im2col GEMM invocation, as leaked by
//!   cache-set conflicts on a shared CPU/accelerator. `m` counts live
//!   filter rows (the layer's output channels, exactly), `k` the live
//!   taps (≤ `C·R·S`), and `n = P·Q` the output pixels.
//!
//! [`Observation`]s are *data*, so restricted channels are exact
//! projections of the full one (see [`Observation::project`]) — the
//! property the channel-invariance suite asserts.

use hd_accel::{Device, DeviceError};
use hd_tensor::{GemmShape, Shape3, Tensor3};
use hd_trace::{LayerObs, StreamingAnalyzer, TensorId, TensorObs, TraceAnalysis};
use std::fmt;

/// Per-layer evidence one inference yields under some channel.
///
/// Every field the attacker might *not* get is an `Option`: a restricted
/// channel simply leaves the fields it cannot see as `None`, and the
/// prober degrades gracefully (priors instead of measurements).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerEvidence {
    /// Execution index (position in the observed layer sequence).
    pub index: usize,
    /// Input tensor ids (dataflow), as far as the channel reveals them.
    /// Channels blind to addresses report a linear chain (`[index]`).
    pub inputs: Vec<TensorId>,
    /// Output tensor id (`index + 1` by the hd-trace convention).
    pub output: TensorId,
    /// Compressed weight bytes read (`None` when sizes are invisible).
    pub weight_bytes: Option<u64>,
    /// Activation bytes read from earlier tensors.
    pub input_bytes: Option<u64>,
    /// Compressed output bytes written (the boundary-effect observable).
    pub output_bytes: Option<u64>,
    /// Psum-encode window in picoseconds (the timing observable).
    pub encode_window_ps: Option<u64>,
    /// Observed GEMM call dimensions (the Cache-Telepathy observable);
    /// `None` on every trace/timing channel.
    pub gemm: Option<GemmShape>,
}

/// Everything one inference revealed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observation {
    /// Per-layer evidence in execution order.
    pub layers: Vec<LayerEvidence>,
    /// Number of distinct tensors the channel distinguishes (tensor 0 is
    /// the network input).
    pub tensor_count: usize,
    /// The raw trace analysis, when the channel exposes one (kept as the
    /// structure reference in [`crate::prober::ProberResult`]).
    pub structure: Option<TraceAnalysis>,
}

impl Observation {
    /// Builds the full-channel observation from a trace analysis. Every
    /// evidence field is populated; [`LayerEvidence::gemm`] stays `None`
    /// (the bus trace does not reveal GEMM blocking).
    pub fn from_trace(analysis: TraceAnalysis) -> Observation {
        let layers = analysis
            .layers
            .iter()
            .map(|l| LayerEvidence {
                index: l.index,
                inputs: l.inputs.clone(),
                output: l.output,
                weight_bytes: Some(l.weight_bytes),
                input_bytes: Some(l.input_bytes),
                output_bytes: Some(l.output_bytes),
                encode_window_ps: Some(l.encode_window_ps),
                gemm: None,
            })
            .collect();
        Observation {
            layers,
            tensor_count: analysis.tensors.len(),
            structure: Some(analysis),
        }
    }

    /// The per-layer scalar series the prober forms probe [`crate::pattern::Pattern`]s
    /// over: output volume when the channel has it (the boundary-effect
    /// signal), else the encode window, else the GEMM `n` dimension.
    /// Channels whose best signal is input-independent produce flat
    /// patterns, and classification falls back to priors — exactly the
    /// degradation the channel × defence matrix measures.
    pub fn signal_per_layer(&self) -> Vec<u64> {
        self.layers
            .iter()
            .map(|l| {
                l.output_bytes
                    .or(l.encode_window_ps)
                    .or_else(|| l.gemm.map(|g| g.n as u64))
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Restricts this observation to what `kind` would have revealed.
    ///
    /// [`TraceOnly`] and [`TimingOnly`] observe through exactly this
    /// function, so "restricted channels are projections of the full one"
    /// holds by construction (and is property-tested anyway).
    pub fn project(&self, kind: ChannelKind) -> Observation {
        match kind {
            ChannelKind::Full => self.clone(),
            ChannelKind::Trace => Observation {
                layers: self
                    .layers
                    .iter()
                    .map(|l| LayerEvidence {
                        encode_window_ps: None,
                        gemm: None,
                        ..l.clone()
                    })
                    .collect(),
                tensor_count: self.tensor_count,
                // The analysis itself is trace-derived, but its timestamps
                // are not: scrub them so nothing downstream can cheat.
                structure: self.structure.as_ref().map(|s| TraceAnalysis {
                    tensors: s
                        .tensors
                        .iter()
                        .map(|t| TensorObs {
                            first_write_ps: 0,
                            last_write_ps: 0,
                            ..*t
                        })
                        .collect(),
                    layers: s
                        .layers
                        .iter()
                        .map(|l| LayerObs {
                            encode_window_ps: 0,
                            ..l.clone()
                        })
                        .collect(),
                }),
            },
            ChannelKind::Timing => Observation {
                // Timing reveals execution order and windows, not
                // addresses: dataflow collapses to a linear chain.
                layers: self
                    .layers
                    .iter()
                    .map(|l| LayerEvidence {
                        index: l.index,
                        inputs: vec![l.index],
                        output: l.index + 1,
                        weight_bytes: None,
                        input_bytes: None,
                        output_bytes: None,
                        encode_window_ps: l.encode_window_ps,
                        gemm: None,
                    })
                    .collect(),
                tensor_count: self.layers.len() + 1,
                structure: None,
            },
            ChannelKind::Gemm => {
                let layers: Vec<LayerEvidence> = self
                    .layers
                    .iter()
                    .filter_map(|l| l.gemm)
                    .enumerate()
                    .map(|(i, g)| LayerEvidence {
                        index: i,
                        inputs: vec![i],
                        output: i + 1,
                        weight_bytes: None,
                        input_bytes: None,
                        output_bytes: None,
                        encode_window_ps: None,
                        gemm: Some(g),
                    })
                    .collect();
                let tensor_count = layers.len() + 1;
                Observation {
                    layers,
                    tensor_count,
                    structure: None,
                }
            }
        }
    }
}

/// The four shipped channels, for CLI flags and experiment grids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Trace + timing (the paper's channel).
    #[default]
    Full,
    /// Transfer volumes and dataflow, no timestamps.
    Trace,
    /// Encode windows only.
    Timing,
    /// GEMM call dimensions from the im2col backend.
    Gemm,
}

impl ChannelKind {
    /// Every shipped channel, in matrix/report order.
    pub const ALL: [ChannelKind; 4] = [
        ChannelKind::Full,
        ChannelKind::Trace,
        ChannelKind::Timing,
        ChannelKind::Gemm,
    ];

    /// Parses a CLI channel name.
    pub fn parse(s: &str) -> Option<ChannelKind> {
        match s {
            "full" => Some(ChannelKind::Full),
            "trace" => Some(ChannelKind::Trace),
            "timing" => Some(ChannelKind::Timing),
            "gemm" => Some(ChannelKind::Gemm),
            _ => None,
        }
    }

    /// The CLI/JSON name.
    pub fn label(self) -> &'static str {
        match self {
            ChannelKind::Full => "full",
            ChannelKind::Trace => "trace",
            ChannelKind::Timing => "timing",
            ChannelKind::Gemm => "gemm",
        }
    }

    /// Boxes the matching observation model over a device (the trait is
    /// object-safe precisely so channel choice can be a runtime value).
    pub fn model<'d>(self, device: &'d Device) -> Box<dyn ObservationModel + 'd> {
        match self {
            ChannelKind::Full => Box::new(FullChannel::new(device)),
            ChannelKind::Trace => Box::new(TraceOnly::new(device)),
            ChannelKind::Timing => Box::new(TimingOnly::new(device)),
            ChannelKind::Gemm => Box::new(GemmDims::new(device)),
        }
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors producing one observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObserveError {
    /// The bus trace could not be analyzed into tensors and layers.
    Trace(hd_trace::AnalyzeTraceError),
    /// The device simulation itself failed (malformed victim graph).
    Device(DeviceError),
    /// The channel does not exist on this target (e.g. [`GemmDims`] on a
    /// device whose conv backend never issues GEMM calls).
    ChannelUnavailable(&'static str),
}

impl fmt::Display for ObserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObserveError::Trace(e) => write!(f, "trace analysis failed: {e}"),
            ObserveError::Device(e) => write!(f, "device simulation failed: {e}"),
            ObserveError::ChannelUnavailable(why) => write!(f, "channel unavailable: {why}"),
        }
    }
}

impl std::error::Error for ObserveError {}

impl From<hd_trace::AnalyzeTraceError> for ObserveError {
    fn from(e: hd_trace::AnalyzeTraceError) -> Self {
        ObserveError::Trace(e)
    }
}

/// Anything the attacker can feed images to while watching *some* side
/// channel. One call = one inference = one [`Observation`].
///
/// `Sync` is a supertrait so the prober can fan the independent inferences
/// of one probe family across worker threads (`&dyn ObservationModel` is
/// `Send` exactly when the trait object is `Sync`). Implementations needing
/// interior mutability should use thread-safe cells (`Mutex`, atomics).
///
/// The trait is object-safe: experiment grids hold `Box<dyn
/// ObservationModel>` keyed by [`ChannelKind`].
pub trait ObservationModel: Sync {
    /// The (publicly known) input shape.
    fn input_shape(&self) -> Shape3;

    /// Runs one inference and returns what this channel revealed.
    ///
    /// # Errors
    ///
    /// Returns [`ObserveError`] when the inference fails or its output
    /// cannot be turned into evidence.
    fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError>;
}

/// The full-channel observation of one device run: stream the bus events
/// through the incremental analyzer (bounded memory), surface simulation
/// failures as typed errors instead of panicking.
fn observe_device(device: &Device, image: &Tensor3) -> Result<Observation, ObserveError> {
    let mut sink = StreamingAnalyzer::new();
    device
        .try_run_with(image, &mut sink)
        .map_err(ObserveError::Device)?;
    Ok(Observation::from_trace(sink.finish()?))
}

/// The simulated device *is* the paper's observation model: probing it
/// directly is the [`FullChannel`].
impl ObservationModel for Device {
    fn input_shape(&self) -> Shape3 {
        Device::input_shape(self)
    }

    fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError> {
        observe_device(self, image)
    }
}

/// Trace + timing: the paper's channel, as an explicit named model.
///
/// Observes identically to probing the [`Device`] directly — the named
/// wrapper exists so channel choice can be uniform (`-c full`).
pub struct FullChannel<'d> {
    device: &'d Device,
}

impl<'d> FullChannel<'d> {
    /// Wraps a device.
    pub fn new(device: &'d Device) -> Self {
        FullChannel { device }
    }
}

impl ObservationModel for FullChannel<'_> {
    fn input_shape(&self) -> Shape3 {
        self.device.input_shape()
    }

    fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError> {
        observe_device(self.device, image)
    }
}

/// Transfer volumes and dataflow without timestamps.
pub struct TraceOnly<'d> {
    device: &'d Device,
}

impl<'d> TraceOnly<'d> {
    /// Wraps a device.
    pub fn new(device: &'d Device) -> Self {
        TraceOnly { device }
    }
}

impl ObservationModel for TraceOnly<'_> {
    fn input_shape(&self) -> Shape3 {
        self.device.input_shape()
    }

    fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError> {
        Ok(observe_device(self.device, image)?.project(ChannelKind::Trace))
    }
}

/// Per-layer encode windows without addresses or sizes.
pub struct TimingOnly<'d> {
    device: &'d Device,
}

impl<'d> TimingOnly<'d> {
    /// Wraps a device.
    pub fn new(device: &'d Device) -> Self {
        TimingOnly { device }
    }
}

impl ObservationModel for TimingOnly<'_> {
    fn input_shape(&self) -> Shape3 {
        self.device.input_shape()
    }

    fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError> {
        Ok(observe_device(self.device, image)?.project(ChannelKind::Timing))
    }
}

/// The Cache-Telepathy channel: `(m, k, n)` of every GEMM call the im2col
/// backend issues, in execution order.
///
/// The dimensions are a pure function of the (pruned) weights and the layer
/// geometry — input images never change them — so the model reads the
/// device's cached call list instead of re-simulating an inference per
/// probe. A real attacker would watch one inference through a cache
/// monitor; repeating it adds nothing, which is precisely this channel's
/// weakness (no probe-dependent signal) and its strength (`m` is the live
/// output-channel count, read off exactly).
pub struct GemmDims<'d> {
    device: &'d Device,
}

impl<'d> GemmDims<'d> {
    /// Wraps a device.
    pub fn new(device: &'d Device) -> Self {
        GemmDims { device }
    }
}

impl ObservationModel for GemmDims<'_> {
    fn input_shape(&self) -> Shape3 {
        self.device.input_shape()
    }

    fn observe(&self, _image: &Tensor3) -> Result<Observation, ObserveError> {
        let calls = self.device.gemm_calls();
        if calls.is_empty() {
            return Err(ObserveError::ChannelUnavailable(
                "device issues no GEMM calls (conv backend is not im2col+GEMM)",
            ));
        }
        let layers: Vec<LayerEvidence> = calls
            .iter()
            .enumerate()
            .map(|(i, &(_node, g))| LayerEvidence {
                index: i,
                inputs: vec![i],
                output: i + 1,
                weight_bytes: None,
                input_bytes: None,
                output_bytes: None,
                encode_window_ps: None,
                gemm: Some(g),
            })
            .collect();
        let tensor_count = layers.len() + 1;
        Ok(Observation {
            layers,
            tensor_count,
            structure: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_accel::{AccelConfig, Trace, TraceSink};
    use hd_dnn::graph::{NetworkBuilder, Params};
    use hd_tensor::ConvBackend;

    fn device() -> Device {
        let mut b = NetworkBuilder::new(3, 12, 12);
        let x = b.input();
        let x = b.conv(x, 6, 3, 1);
        let x = b.max_pool(x, 2);
        b.conv(x, 8, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 3);
        Device::new(net, params, AccelConfig::eyeriss_v2())
    }

    fn image(dev: &Device) -> Tensor3 {
        let s = ObservationModel::input_shape(dev);
        Tensor3::full(s.c, s.h, s.w, 0.25)
    }

    #[test]
    fn device_observation_mirrors_the_trace_analysis() {
        let dev = device();
        let img = image(&dev);
        let obs = dev.observe(&img).unwrap();
        let analysis = hd_trace::analyze(&dev.run(&img)).unwrap();
        assert_eq!(obs.structure.as_ref(), Some(&analysis));
        assert_eq!(obs.tensor_count, analysis.tensors.len());
        assert_eq!(obs.signal_per_layer(), analysis.output_bytes_per_layer());
        for (e, l) in obs.layers.iter().zip(&analysis.layers) {
            assert_eq!(e.weight_bytes, Some(l.weight_bytes));
            assert_eq!(e.output_bytes, Some(l.output_bytes));
            assert_eq!(e.encode_window_ps, Some(l.encode_window_ps));
            assert_eq!(e.inputs, l.inputs);
            assert_eq!(e.gemm, None);
        }
    }

    #[test]
    fn full_channel_wrapper_is_the_device_observation() {
        let dev = device();
        let img = image(&dev);
        let direct = dev.observe(&img).unwrap();
        let wrapped = FullChannel::new(&dev).observe(&img).unwrap();
        assert_eq!(direct, wrapped);
    }

    #[test]
    fn trace_and_timing_wrappers_observe_exact_projections() {
        let dev = device();
        let img = image(&dev);
        let full = dev.observe(&img).unwrap();
        let trace = TraceOnly::new(&dev).observe(&img).unwrap();
        let timing = TimingOnly::new(&dev).observe(&img).unwrap();
        assert_eq!(trace, full.project(ChannelKind::Trace));
        assert_eq!(timing, full.project(ChannelKind::Timing));
        // Trace: volumes survive, every timestamp is gone.
        assert!(trace.layers.iter().all(|l| l.encode_window_ps.is_none()));
        assert_eq!(full.signal_per_layer(), trace.signal_per_layer());
        let s = trace.structure.as_ref().unwrap();
        assert!(s.layers.iter().all(|l| l.encode_window_ps == 0));
        assert!(s.tensors.iter().all(|t| t.last_write_ps == 0));
        // Timing: windows survive, volumes and dataflow are gone.
        assert!(timing.layers.iter().all(|l| l.output_bytes.is_none()));
        assert_eq!(
            timing
                .layers
                .iter()
                .map(|l| l.encode_window_ps)
                .collect::<Vec<_>>(),
            full.layers
                .iter()
                .map(|l| l.encode_window_ps)
                .collect::<Vec<_>>()
        );
        assert!(timing.structure.is_none());
    }

    #[test]
    fn gemm_dims_report_one_call_per_conv() {
        let dev = device();
        let obs = GemmDims::new(&dev).observe(&image(&dev)).unwrap();
        assert_eq!(obs.layers.len(), 2, "two convs, pool issues no GEMM");
        for (i, l) in obs.layers.iter().enumerate() {
            assert_eq!(l.index, i);
            assert_eq!(l.output, i + 1);
            assert!(l.gemm.is_some());
            assert_eq!(l.output_bytes, None);
        }
        // First conv: m = 6 live filters, n = 12*12 output pixels.
        let g = obs.layers[0].gemm.unwrap();
        assert_eq!(g.m, 6);
        assert_eq!(g.n, 144);
    }

    #[test]
    fn gemm_dims_unavailable_without_the_im2col_backend() {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        b.conv(x, 4, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 1);
        let cfg = AccelConfig::eyeriss_v2().with_conv_backend(ConvBackend::Direct);
        let dev = Device::new(net, params, cfg);
        let err = GemmDims::new(&dev).observe(&image(&dev)).unwrap_err();
        assert!(matches!(err, ObserveError::ChannelUnavailable(_)), "{err}");
    }

    #[test]
    fn channel_kinds_parse_and_label_round_trip() {
        for kind in ChannelKind::ALL {
            assert_eq!(ChannelKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(ChannelKind::parse("cache"), None);
        // The boxed constructor observes like the concrete model.
        let dev = device();
        let img = image(&dev);
        let boxed = ChannelKind::Trace.model(&dev);
        assert_eq!(
            boxed.observe(&img).unwrap(),
            TraceOnly::new(&dev).observe(&img).unwrap()
        );
    }

    /// A target implementing [`ObservationModel`] directly over a buffered
    /// trace must observe identically to the device's own channel.
    struct BufferedTarget {
        dev: Device,
    }

    impl ObservationModel for BufferedTarget {
        fn input_shape(&self) -> Shape3 {
            self.dev.input_shape()
        }

        fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError> {
            let mut sink = StreamingAnalyzer::new();
            for e in self.dev.run(image).events {
                sink.event(e);
            }
            Ok(Observation::from_trace(sink.finish()?))
        }
    }

    #[test]
    fn buffered_targets_observe_like_the_direct_channel() {
        let target = BufferedTarget { dev: device() };
        let img = image(&target.dev);
        let buffered = target.observe(&img).unwrap();
        let direct = target.dev.observe(&img).unwrap();
        assert_eq!(buffered, direct, "replay must be the full channel");
    }
}
