//! Probe image construction (paper §5, §6.1).
//!
//! The attacker feeds crafted images through the device's input path. To
//! expose the boundary effect along one axis while staying insensitive to
//! the other, a probe is a **vertical stripe**: column `t` carries a
//! per-channel random value (possibly negative, to defeat bias/batch-norm
//! masking via ReLU — §5.2), all other pixels are zero. Sweeping `t` from
//! the left edge produces the shift family whose responses form the
//! `ABCC…` patterns.

use hd_tensor::{Shape3, Tensor3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One independent random probe: a set of per-shift images.
#[derive(Clone, Debug)]
pub struct ProbeFamily {
    /// `images[t]` carries the stripe at column `t`.
    pub images: Vec<Tensor3>,
    /// The per-`(channel, row)` stripe amplitudes used (`c * h` values).
    pub amplitudes: Vec<f32>,
}

/// Generates `count` independent probe families for the given input shape,
/// each sweeping the stripe over `shifts` columns.
///
/// Amplitudes vary per channel *and* per row — every image row is then an
/// independent 1-D probe of the same geometry, which multiplies the chance
/// that at least one row's boundary response changes the total nnz.
/// Values are half-Gaussian with random sign (the paper's §5.2 random
/// probes), bounded away from zero so the stripe never vanishes.
///
/// # Panics
///
/// Panics if `shifts` exceeds the input width.
pub fn stripe_probes(shape: Shape3, shifts: usize, count: usize, seed: u64) -> Vec<ProbeFamily> {
    assert!(
        shifts <= shape.w,
        "cannot sweep {shifts} shifts over width {}",
        shape.w
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let amplitudes: Vec<f32> = (0..shape.c * shape.h)
                .map(|_| {
                    let mag = 0.25 + hd_tensor::tensor::gaussian(&mut rng).abs();
                    if rng.gen_bool(0.5) {
                        mag
                    } else {
                        -mag
                    }
                })
                .collect();
            // One scratch buffer per family: move the stripe column by
            // column and clone each snapshot, instead of zero-filling a
            // fresh `c*h*w` image per shift. Adjacent shifts differ in only
            // `2*c*h` writes, so building a family is O(shifts * c * h *
            // w) in clones alone (unavoidable: the snapshots are owned)
            // rather than O(shifts * c * h * w) zero-fills *plus* writes.
            let mut scratch = Tensor3::zeros(shape.c, shape.h, shape.w);
            let mut images = Vec::with_capacity(shifts);
            for t in 0..shifts {
                for c in 0..shape.c {
                    for y in 0..shape.h {
                        if t > 0 {
                            scratch.set(c, y, t - 1, 0.0);
                        }
                        scratch.set(c, y, t, amplitudes[c * shape.h + y]);
                    }
                }
                images.push(scratch.clone());
            }
            ProbeFamily { images, amplitudes }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_structure() {
        let fams = stripe_probes(Shape3::new(3, 8, 8), 4, 2, 7);
        assert_eq!(fams.len(), 2);
        for fam in &fams {
            assert_eq!(fam.images.len(), 4);
            for (t, img) in fam.images.iter().enumerate() {
                // Exactly one non-zero column.
                assert_eq!(img.nnz(), 3 * 8, "shift {t}");
                for c in 0..3 {
                    for y in 0..8 {
                        assert_eq!(img.at(c, y, t), fam.amplitudes[c * 8 + y]);
                    }
                }
            }
        }
    }

    #[test]
    fn amplitudes_are_bounded_away_from_zero() {
        let fams = stripe_probes(Shape3::new(3, 4, 16), 8, 16, 3);
        for fam in &fams {
            for &a in &fam.amplitudes {
                assert!(a.abs() >= 0.25);
            }
        }
    }

    #[test]
    fn both_signs_occur() {
        let fams = stripe_probes(Shape3::new(1, 2, 8), 1, 64, 11);
        let pos = fams.iter().filter(|f| f.amplitudes[0] > 0.0).count();
        assert!(pos > 8 && pos < 56, "sign balance off: {pos}/64");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = stripe_probes(Shape3::new(2, 4, 8), 3, 2, 5);
        let b = stripe_probes(Shape3::new(2, 4, 8), 3, 2, 5);
        assert_eq!(a[0].amplitudes, b[0].amplitudes);
        assert_eq!(a[1].images[2], b[1].images[2]);
    }

    #[test]
    #[should_panic(expected = "cannot sweep")]
    fn too_many_shifts_panics() {
        let _ = stripe_probes(Shape3::new(1, 4, 4), 5, 1, 0);
    }

    /// The shared-scratch construction must produce exactly the images the
    /// naive per-shift build would: a fresh zero tensor with the stripe at
    /// column `t`, nothing left over from earlier shifts.
    #[test]
    fn scratch_reuse_matches_fresh_per_shift_build() {
        let shape = Shape3::new(3, 5, 9);
        let fams = stripe_probes(shape, shape.w, 3, 21);
        for fam in &fams {
            for (t, img) in fam.images.iter().enumerate() {
                let mut fresh = Tensor3::zeros(shape.c, shape.h, shape.w);
                for c in 0..shape.c {
                    for y in 0..shape.h {
                        fresh.set(c, y, t, fam.amplitudes[c * shape.h + y]);
                    }
                }
                assert_eq!(img, &fresh, "shift {t}");
            }
        }
    }
}
