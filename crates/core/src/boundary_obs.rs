//! Boundary-effect observability estimation (paper §5.2).
//!
//! The boundary effect always *exists* at an edge, but is *observable* only
//! when the edge response's nnz differs from the interior response's nnz.
//! The paper randomly samples kernels from pruned models, applies random
//! half-Gaussian probes, and reports observability in 77% of cases; this
//! module reproduces that Monte-Carlo experiment.

use hd_tensor::tensor::gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the observability experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObservabilityConfig {
    /// Kernel size of the sampled conv layers.
    pub kernel: usize,
    /// Fraction of surviving (non-zero) weights in sampled kernels.
    pub weight_density: f64,
    /// Standard deviation of the bias / batch-norm shift term.
    pub bias_std: f32,
    /// Monte-Carlo trials.
    pub trials: usize,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            kernel: 3,
            weight_density: 0.35,
            bias_std: 0.5,
            trials: 10_000,
        }
    }
}

/// One trial: sample a pruned 2-D kernel and a random half-Gaussian stripe
/// probe (zero background); the boundary effect is observable iff placing
/// the stripe at the edge vs the interior changes the post-ReLU nnz.
///
/// With a zero background, interior placements are exactly translation-
/// equivariant, so any nnz difference is pure kernel truncation at the
/// edge. The dominant unobservable case is a kernel whose edge column was
/// fully pruned away (probability `(1 - density)^r`), plus rarer sign
/// cancellations — together landing near the paper's 77%.
fn trial(cfg: &ObservabilityConfig, rng: &mut StdRng) -> bool {
    use hd_tensor::conv::{conv2d, Conv2dCfg, Padding};
    use hd_tensor::{Tensor3, Tensor4};

    let r = cfg.kernel;
    let h = (4 * r).max(8);
    let w = h;

    // Pruned kernel (re-drawn if fully pruned — the accelerator skips it).
    let mut kernel = Tensor4::zeros(1, 1, r, r);
    loop {
        let mut any = false;
        for v in kernel.data_mut() {
            *v = if rng.gen_bool(cfg.weight_density) {
                any = true;
                gaussian(rng)
            } else {
                0.0
            };
        }
        if any {
            break;
        }
    }
    let bias = gaussian(rng) * cfg.bias_std;

    // Random signed half-Gaussian stripe values, identical for both probes.
    let stripe: Vec<f32> = (0..h)
        .map(|_| {
            let mag = gaussian(rng).abs() + 0.05;
            if rng.gen_bool(0.5) {
                mag
            } else {
                -mag
            }
        })
        .collect();
    let place = |col: usize| {
        let mut x = Tensor3::zeros(1, h, w);
        for (y, &v) in stripe.iter().enumerate() {
            x.set(0, y, col, v);
        }
        x
    };

    let c = Conv2dCfg::new(1, Padding::Same);
    let nnz = |inp: &Tensor3| {
        let mut out = conv2d(inp, &kernel, Some(&[bias]), &c);
        out.relu_inplace();
        out.nnz()
    };
    nnz(&place(0)) != nnz(&place(2 * r))
}

/// Estimates the probability that a single random probe observes the
/// boundary effect. Deterministic in `seed`.
pub fn observability_rate(cfg: &ObservabilityConfig, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let hits = (0..cfg.trials).filter(|_| trial(cfg, &mut rng)).count();
    hits as f64 / cfg.trials.max(1) as f64
}

/// Probability that at least one of `probes` independent random probes
/// observes the effect (the §5.4 amplification argument).
pub fn amplified_rate(single: f64, probes: u32) -> f64 {
    1.0 - (1.0 - single).powi(probes as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_in_plausible_band() {
        let rate = observability_rate(&ObservabilityConfig::default(), 7);
        // The paper reports 77%; any healthy simulation lands well above
        // chance and below certainty.
        assert!(rate > 0.5 && rate < 0.98, "rate {rate}");
    }

    #[test]
    fn rate_is_deterministic_in_seed() {
        let cfg = ObservabilityConfig {
            trials: 500,
            ..Default::default()
        };
        assert_eq!(observability_rate(&cfg, 3), observability_rate(&cfg, 3));
    }

    #[test]
    fn pointwise_kernels_are_never_observable() {
        // A 1x1 kernel has no boundary effect at all.
        let cfg = ObservabilityConfig {
            kernel: 1,
            trials: 300,
            ..Default::default()
        };
        assert_eq!(observability_rate(&cfg, 5), 0.0);
    }

    #[test]
    fn amplification_approaches_one() {
        let single = 0.5;
        assert!(amplified_rate(single, 1) == 0.5);
        assert!(amplified_rate(single, 10) > 0.999);
        assert!(amplified_rate(0.77, 16) > 0.999_999);
    }

    #[test]
    fn denser_kernels_are_more_observable() {
        let sparse = observability_rate(
            &ObservabilityConfig {
                weight_density: 0.15,
                trials: 4000,
                ..Default::default()
            },
            11,
        );
        let dense = observability_rate(
            &ObservabilityConfig {
                weight_density: 0.9,
                trials: 4000,
                ..Default::default()
            },
            11,
        );
        assert!(dense >= sparse, "dense {dense} vs sparse {sparse}");
    }
}
