//! The HuffDuff probing attack (paper Algorithm 1).
//!
//! For each layer observed in the DRAM trace, the prober:
//!
//! 1. collects the layer's output transfer volume for every probe shift —
//!    volume equality is nnz equality, because the codec is monotone in nnz,
//! 2. refines the measured [`Pattern`] across independent random probes
//!    (one-sided errors only merge classes, never split them — §5.4),
//! 3. asks the [`crate::symbolic`] engine for the pattern each geometry hypothesis
//!    would produce on the recovered prefix network, and keeps hypotheses
//!    whose pattern the measurement coarsens,
//! 4. extends the symbolic prefix with the selected geometry and moves on.
//!
//! Channel counts are invisible to the boundary effect (§6.4); they come
//! from the timing channel in [`crate::timing`].

use crate::channel::{Observation, ObservationModel, ObserveError};
use crate::pattern::Pattern;
use crate::probe::stripe_probes;
use crate::symbolic::{
    multiset_signature, sym_add, ConvHypothesis, Sym, SymConvLayer, SymPoolLayer, VarSource,
};
use hd_pool::WorkerPool;
use hd_tensor::conv::{conv_out_dim, Padding};
use hd_tensor::{GemmShape, Tensor3};
use hd_trace::{TensorId, TraceAnalysis};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Recovered geometry class of one observed layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolution with recovered kernel size and stride.
    Conv {
        /// Symmetric kernel size `R = S`.
        kernel: usize,
        /// Symmetric stride.
        stride: usize,
    },
    /// Spatial pooling with recovered factor.
    Pool {
        /// Window == stride.
        factor: usize,
    },
    /// Elementwise residual join.
    Add,
    /// Global spatial pooling (weightless, no finite pooling factor fits).
    GlobalPool,
    /// Fully connected head layer (boundary effect absent).
    Dense,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv { kernel, stride } => write!(f, "conv {kernel}x{kernel}/{stride}"),
            LayerKind::Pool { factor } => write!(f, "pool /{factor}"),
            LayerKind::Add => write!(f, "add"),
            LayerKind::GlobalPool => write!(f, "global-pool"),
            LayerKind::Dense => write!(f, "dense"),
        }
    }
}

/// One recovered layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredLayer {
    /// Execution index (matches [`hd_trace::LayerObs::index`]).
    pub index: usize,
    /// Observed input tensor ids.
    pub inputs: Vec<TensorId>,
    /// Recovered geometry (point estimate).
    pub kind: LayerKind,
    /// Other geometries equally consistent with every observation. Deep
    /// layers whose feature saturates the (narrow) map can be genuinely
    /// ambiguous — the boundary-effect observable carries no more bits
    /// there — and the point estimate then follows a common-CNN prior.
    pub alternatives: Vec<LayerKind>,
    /// Inferred output spatial size `(P, Q)`, if the layer produces a map.
    pub out_hw: Option<(usize, usize)>,
    /// The refined measured pattern (diagnostics).
    pub pattern: Pattern,
    /// Observed compressed weight bytes (0 when the channel hides sizes).
    pub weight_bytes: u64,
    /// Observed compressed output bytes from the first probe run (0 when
    /// the channel hides volumes).
    pub output_bytes: u64,
    /// Observed encode window in picoseconds from the first probe run
    /// (0 when the channel hides timing).
    pub encode_window_ps: u64,
    /// Observed GEMM call dimensions, when the channel exposes them.
    pub gemm: Option<GemmShape>,
}

/// Prober configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ProberConfig {
    /// Number of stripe positions swept from the left edge.
    pub shifts: usize,
    /// Maximum independent random probe families.
    pub max_probes: usize,
    /// Stop early once the refined patterns have been stable for this many
    /// consecutive families.
    pub stable_probes: usize,
    /// Candidate kernel sizes.
    pub kernels: Vec<usize>,
    /// Candidate strides.
    pub strides: Vec<usize>,
    /// Candidate pooling factors.
    pub pools: Vec<usize>,
    /// RNG seed (probe amplitudes + symbolic variables).
    pub seed: u64,
    /// Worker threads used to fan one probe family's `shifts` inferences
    /// across cores. `None` (the default) uses all available cores;
    /// `Some(1)` is the serial path. Any setting produces bit-identical
    /// [`ProberResult`]s — per-probe seeds are fixed up front and results
    /// are reduced in probe-index order, never in completion order.
    pub parallelism: Option<usize>,
}

impl Default for ProberConfig {
    fn default() -> Self {
        ProberConfig {
            shifts: 24,
            max_probes: 16,
            stable_probes: 3,
            kernels: vec![1, 3, 5, 7],
            strides: vec![1, 2],
            pools: vec![2, 3, 4],
            seed: 0x5EED,
            parallelism: None,
        }
    }
}

/// A rejected attack-side configuration (from [`ProberConfig::builder`] or
/// [`crate::attack::AttackConfig::builder`]).
///
/// Struct-literal construction stays possible and unvalidated; the builders
/// reject configurations that would silently degenerate (a campaign with
/// zero probes, a hypothesis grid with no candidates, a zero-thread
/// executor) before any device run happens.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A count that must be positive (shifts, probe families, classes…)
    /// was zero.
    ZeroField {
        /// Which field was zero.
        field: &'static str,
    },
    /// A candidate list (kernels, strides, pools) was empty — no
    /// hypothesis could ever be accepted.
    EmptyCandidates {
        /// Which list was empty.
        field: &'static str,
    },
    /// `parallelism == Some(0)`: an executor with no worker threads.
    /// Use `Some(1)` for the serial path or `None` for all cores.
    ZeroParallelism,
    /// A fraction (first-layer sparsity bound) was outside `(0, 1]`.
    FractionOutOfRange {
        /// Which field was rejected.
        field: &'static str,
        /// The rejected value.
        got: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField { field } => write!(f, "{field} must be nonzero"),
            ConfigError::EmptyCandidates { field } => {
                write!(f, "{field} must list at least one candidate")
            }
            ConfigError::ZeroParallelism => write!(
                f,
                "parallelism Some(0) is meaningless; use Some(1) for serial or None for all cores"
            ),
            ConfigError::FractionOutOfRange { field, got } => {
                write!(f, "{field} must be in (0, 1], got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`ProberConfig`], seeded with the defaults.
///
/// ```
/// use huffduff_core::prober::ProberConfig;
/// let cfg = ProberConfig::builder()
///     .shifts(12)
///     .parallelism(Some(4))
///     .build()
///     .unwrap();
/// assert_eq!(cfg.shifts, 12);
///
/// assert!(ProberConfig::builder().parallelism(Some(0)).build().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProberConfigBuilder {
    cfg: ProberConfig,
}

impl ProberConfigBuilder {
    /// Number of stripe positions swept from the left edge.
    pub fn shifts(mut self, shifts: usize) -> Self {
        self.cfg.shifts = shifts;
        self
    }

    /// Maximum independent probe families.
    pub fn max_probes(mut self, max_probes: usize) -> Self {
        self.cfg.max_probes = max_probes;
        self
    }

    /// Consecutive stable families before early stop.
    pub fn stable_probes(mut self, stable_probes: usize) -> Self {
        self.cfg.stable_probes = stable_probes;
        self
    }

    /// Candidate kernel sizes.
    pub fn kernels(mut self, kernels: Vec<usize>) -> Self {
        self.cfg.kernels = kernels;
        self
    }

    /// Candidate strides.
    pub fn strides(mut self, strides: Vec<usize>) -> Self {
        self.cfg.strides = strides;
        self
    }

    /// Candidate pooling factors.
    pub fn pools(mut self, pools: Vec<usize>) -> Self {
        self.cfg.pools = pools;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Worker threads (`None` = all cores, `Some(1)` = serial).
    pub fn parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero counts, empty candidate lists, or
    /// `parallelism == Some(0)`.
    pub fn build(self) -> Result<ProberConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl ProberConfig {
    /// A validating builder seeded with [`ProberConfig::default`].
    pub fn builder() -> ProberConfigBuilder {
        ProberConfigBuilder::default()
    }

    /// The checks [`ProberConfigBuilder::build`] enforces, callable on any
    /// config (e.g. one assembled as a struct literal).
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("shifts", self.shifts),
            ("max_probes", self.max_probes),
            ("stable_probes", self.stable_probes),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        for (field, list) in [
            ("kernels", &self.kernels),
            ("strides", &self.strides),
            ("pools", &self.pools),
        ] {
            if list.is_empty() {
                return Err(ConfigError::EmptyCandidates { field });
            }
        }
        if self.parallelism == Some(0) {
            return Err(ConfigError::ZeroParallelism);
        }
        Ok(())
    }

    /// Returns this config with the parallelism knob set.
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Worker-thread count the executor will actually use for `jobs`
    /// independent inferences: the configured [`ProberConfig::parallelism`]
    /// (or all available cores), clamped to `1..=jobs`.
    pub fn effective_parallelism(&self, jobs: usize) -> usize {
        let requested = self.parallelism.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        requested.clamp(1, jobs.max(1))
    }
}

/// Prober output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProberResult {
    /// Recovered layers in execution order.
    pub layers: Vec<RecoveredLayer>,
    /// Probe families actually consumed before convergence.
    pub probes_used: usize,
    /// Device inferences performed (`probes_used * shifts`).
    pub runs_used: usize,
    /// Trace analysis of the first probe run, when the observation channel
    /// exposes one (`None` for address-blind channels like timing/GEMM).
    pub structure: Option<TraceAnalysis>,
}

impl ProberResult {
    /// Indices (into `layers`) of recovered conv layers, in order.
    pub fn conv_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l.kind, LayerKind::Conv { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Human-readable summary.
    pub fn report(&self) -> String {
        let mut s = format!(
            "prober: {} layers recovered with {} probes ({} device runs)\n",
            self.layers.len(),
            self.probes_used,
            self.runs_used
        );
        for l in &self.layers {
            s.push_str(&format!(
                "  layer {:>2}: {:<12} out_hw={:?} pattern={}\n",
                l.index,
                l.kind.to_string(),
                l.out_hw,
                l.pattern
            ));
        }
        s
    }
}

/// Errors from the probing attack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeError {
    /// The bus trace could not be analyzed.
    Trace(hd_trace::AnalyzeTraceError),
    /// The device simulation itself failed (malformed victim graph). The
    /// pre-redesign boundary panicked here; the typed variant lets callers
    /// probing many victims skip the broken one.
    Device(hd_accel::DeviceError),
    /// The chosen observation channel does not exist on this target.
    ChannelUnavailable(&'static str),
    /// Probe runs disagreed on the number of layers (non-static victim).
    UnstableStructure,
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Trace(e) => write!(f, "trace analysis failed: {e}"),
            ProbeError::Device(e) => write!(f, "device simulation failed: {e}"),
            ProbeError::ChannelUnavailable(why) => write!(f, "channel unavailable: {why}"),
            ProbeError::UnstableStructure => {
                write!(f, "probe runs produced inconsistent layer structures")
            }
        }
    }
}

impl std::error::Error for ProbeError {}

impl From<hd_trace::AnalyzeTraceError> for ProbeError {
    fn from(e: hd_trace::AnalyzeTraceError) -> Self {
        ProbeError::Trace(e)
    }
}

impl From<ObserveError> for ProbeError {
    fn from(e: ObserveError) -> Self {
        match e {
            ObserveError::Trace(e) => ProbeError::Trace(e),
            ObserveError::Device(e) => ProbeError::Device(e),
            ObserveError::ChannelUnavailable(why) => ProbeError::ChannelUnavailable(why),
        }
    }
}

/// Runs the probing attack against a target.
///
/// Fans each family's inferences across the process-wide [`WorkerPool`]
/// (see [`probe_with_pool`] to supply a dedicated pool, e.g. to pin the
/// worker count in tests).
///
/// # Errors
///
/// Returns [`ProbeError`] if traces cannot be analyzed or the victim's layer
/// structure varies across runs.
pub fn probe(
    target: &dyn ObservationModel,
    cfg: &ProberConfig,
) -> Result<ProberResult, ProbeError> {
    probe_with_pool(target, cfg, WorkerPool::global())
}

/// [`probe`] with an explicit worker pool.
///
/// The pool is created once per campaign and reused across probe families
/// and refinement rounds; `cfg.parallelism` still caps how many of its
/// workers one family may occupy. Results are bit-identical for any pool
/// size (see `run_family`).
///
/// # Errors
///
/// Returns [`ProbeError`] if traces cannot be analyzed or the victim's layer
/// structure varies across runs.
pub fn probe_with_pool(
    target: &dyn ObservationModel,
    cfg: &ProberConfig,
    pool: &WorkerPool,
) -> Result<ProberResult, ProbeError> {
    let _probe_span = hd_obs::span("prober.probe", "");
    let shape = target.input_shape();
    let shifts = cfg.shifts.min(shape.w);
    let families = stripe_probes(shape, shifts, cfg.max_probes, cfg.seed);
    let workers = cfg.effective_parallelism(shifts);

    // --- Collect measured patterns, probing until they stabilize. ---
    //
    // Families stay sequential (the early-stop decision after each family
    // depends on all earlier ones), but the `shifts` inferences inside one
    // family are independent and fan out across `workers` threads.
    let mut first: Option<Observation> = None;
    let mut bytes_per_family: Vec<Vec<Vec<u64>>> = Vec::new(); // [family][shift][layer]
    let mut refined: Vec<Pattern> = Vec::new();
    let mut stable_for = 0usize;
    let mut probes_used = 0usize;

    for (family_idx, family) in families.iter().enumerate() {
        let _family_span = hd_obs::span("prober.family", "");
        hd_obs::counter_add("prober.families", "", 1);
        if hd_obs::enabled() {
            // Per-family run counts; `counter_total("prober.runs")` gives
            // the campaign total. The label format! only runs when enabled.
            hd_obs::counter_add(
                "prober.runs",
                &format!("family{family_idx}"),
                family.images.len() as u64,
            );
        }
        let observations = run_family(target, &family.images, workers, pool)?;
        let mut bytes_this: Vec<Vec<u64>> = Vec::with_capacity(shifts);
        for obs in observations {
            match &first {
                None => {
                    bytes_this.push(obs.signal_per_layer());
                    first = Some(obs);
                }
                Some(f) => {
                    if obs.layers.len() != f.layers.len() {
                        return Err(ProbeError::UnstableStructure);
                    }
                    bytes_this.push(obs.signal_per_layer());
                }
            }
        }
        probes_used += 1;
        bytes_per_family.push(bytes_this);

        // Refine patterns layer by layer.
        // hd-lint: allow(no-panic) -- set on the first loop iteration, and the loop runs at least once
        let n_layers = first.as_ref().unwrap().layers.len();
        let mut changed = false;
        for l in 0..n_layers {
            let series: Vec<u64> = bytes_per_family
                .last()
                .unwrap() // hd-lint: allow(no-panic) -- pushed to just above, never empty here
                .iter()
                .map(|per_layer| per_layer[l])
                .collect();
            let p = Pattern::of(&series);
            if refined.len() <= l {
                refined.push(p);
                changed = true;
            } else {
                let r = refined[l].refine(&p);
                if r != refined[l] {
                    refined[l] = r;
                    changed = true;
                }
            }
        }
        if changed {
            stable_for = 0;
        } else {
            stable_for += 1;
            if stable_for >= cfg.stable_probes {
                break;
            }
        }
    }

    // hd-lint: allow(no-panic) -- cfg.max_probes >= 1 is validated, so the probe loop always runs
    let first = first.expect("at least one probe ran");

    // --- Classify each layer against symbolic hypotheses. ---
    let mut vars = VarSource::new(cfg.seed ^ 0xC0FFEE);
    let mut tensor_rows: Vec<Option<Vec<Vec<Sym>>>> = vec![None; first.tensor_count];
    let mut tensor_hw: Vec<Option<(usize, usize)>> = vec![None; first.tensor_count];
    // Channel counts per tensor, where the channel reveals them (only the
    // GEMM channel does: `m` = live output channels). The boundary-effect
    // channels leave everything past the input `None` — channel counts are
    // invisible to them (§6.4) and come from timing ratios instead.
    let mut tensor_c: Vec<Option<usize>> = vec![None; first.tensor_count];
    tensor_rows[0] = Some(crate::symbolic::impulse_rows(shape.w, shifts, &mut vars));
    tensor_hw[0] = Some((shape.h, shape.w));
    tensor_c[0] = Some(shape.c);

    let n_layers = first.layers.len();
    // A layer is "in the trunk" while any weightless layer (pool/add/GAP)
    // still executes after it; past the last one, weighted layers with no
    // boundary signal are head (dense) layers. Channels that hide weight
    // sizes see no weightless layers, so everything classifies as head —
    // by design: without sizes the trunk/head split is unobservable.
    let mut in_trunk = vec![false; n_layers];
    let mut seen_weightless = false;
    for i in (0..n_layers).rev() {
        in_trunk[i] = seen_weightless;
        if first.layers[i].weight_bytes == Some(0) {
            seen_weightless = true;
        }
    }

    let mut layers: Vec<RecoveredLayer> = Vec::with_capacity(n_layers);
    let mut confidences: Vec<Confidence> = Vec::with_capacity(n_layers);
    for obs in &first.layers {
        let meas = refined[obs.index].clone();

        // GEMM evidence short-circuits the symbolic engine: the call
        // dimensions name the geometry directly (Cache-Telepathy).
        if let Some(g) = obs.gemm {
            let in_hw = obs.inputs.first().and_then(|&src| tensor_hw[src]);
            let in_c = obs.inputs.first().and_then(|&src| tensor_c[src]);
            let classified = classify_gemm(g, in_hw, in_c, cfg);
            tensor_rows[obs.output] = None;
            tensor_hw[obs.output] = classified.hw;
            tensor_c[obs.output] = Some(g.m);
            confidences.push(classified.confidence);
            layers.push(RecoveredLayer {
                index: obs.index,
                inputs: obs.inputs.clone(),
                kind: classified.kind,
                alternatives: classified.alternatives,
                out_hw: classified.hw,
                pattern: meas,
                weight_bytes: obs.weight_bytes.unwrap_or(0),
                output_bytes: obs.output_bytes.unwrap_or(0),
                encode_window_ps: obs.encode_window_ps.unwrap_or(0),
                gemm: Some(g),
            });
            continue;
        }

        // Residual-join consistency: both inputs of an Add must share the
        // same spatial size. When they disagree, the lower-confidence
        // branch's producer (typically a signal-free 1x1/2 projection) has
        // its stride corrected to match the trusted branch, and its
        // symbolic state is rebuilt — stopping misclassification cascades.
        if obs.inputs.len() == 2 && obs.weight_bytes == Some(0) {
            reconcile_join(
                &obs.inputs,
                &mut layers,
                &confidences,
                &mut tensor_rows,
                &mut tensor_hw,
                &mut vars,
            );
        }

        let input_rows: Vec<Option<&Vec<Vec<Sym>>>> = obs
            .inputs
            .iter()
            .map(|&src| tensor_rows[src].as_ref())
            .collect();

        let ctx = LayerContext {
            weight_bytes: obs.weight_bytes,
            input_bytes: obs.input_bytes,
            output_bytes: obs.output_bytes,
            in_trunk: in_trunk[obs.index],
            is_last: obs.index + 1 == n_layers,
        };
        let classified = classify_layer(
            &ctx,
            &input_rows,
            &obs.inputs
                .iter()
                .map(|&src| tensor_hw[src])
                .collect::<Vec<_>>(),
            &meas,
            cfg,
            &mut vars,
        );

        tensor_rows[obs.output] = classified.rows;
        tensor_hw[obs.output] = classified.hw;
        confidences.push(classified.confidence);
        layers.push(RecoveredLayer {
            index: obs.index,
            inputs: obs.inputs.clone(),
            kind: classified.kind,
            alternatives: classified.alternatives,
            out_hw: classified.hw,
            pattern: meas,
            weight_bytes: obs.weight_bytes.unwrap_or(0),
            output_bytes: obs.output_bytes.unwrap_or(0),
            encode_window_ps: obs.encode_window_ps.unwrap_or(0),
            gemm: None,
        });
    }

    Ok(ProberResult {
        layers,
        probes_used,
        runs_used: probes_used * shifts,
        structure: first.structure,
    })
}

/// Runs one probe inference through the observation model.
///
/// Telemetry prep (wall-clock read) only runs when enabled; the disabled
/// path is a single relaxed atomic load, and the enabled path allocates
/// nothing per probe (static names, empty labels).
fn run_one(target: &dyn ObservationModel, img: &Tensor3) -> Result<Observation, ProbeError> {
    let shift_timer = if hd_obs::enabled() {
        Some((hd_obs::span("prober.shift", ""), hd_obs::monotonic_us()))
    } else {
        None
    };
    hd_obs::counter_add("prober.probe_runs", "", 1);
    let obs = target.observe(img)?;
    if let Some((_span, t0)) = shift_timer {
        let elapsed_us = hd_obs::monotonic_us().saturating_sub(t0);
        hd_obs::observe("prober.shift_latency_us", "", elapsed_us as f64);
    }
    Ok(obs)
}

/// Runs every probe image of one family against the target and returns the
/// observations **in image-index order**, regardless of scheduling.
///
/// The parallel path hands the family to the persistent [`WorkerPool`]:
/// workers steal one image at a time off a shared counter (no static
/// chunking, so a slow probe never strands the rest of its chunk), and
/// each image owns a result slot so reduction order never depends on
/// thread completion order. `Device::run` derives any defence noise from
/// the image — not from shared mutable state — so results are
/// bit-identical at any worker count.
///
/// Errors cancel the family early: once a probe fails, tasks with a higher
/// image index are skipped (monotone `fetch_min` on the lowest failing
/// index — a task observes a cut only at claim time, and the cut only ever
/// decreases, so every index below the final cut did run). The surfaced
/// error is the lowest failing image index, exactly what the serial
/// short-circuit path reports.
fn run_family(
    target: &dyn ObservationModel,
    images: &[Tensor3],
    workers: usize,
    pool: &WorkerPool,
) -> Result<Vec<Observation>, ProbeError> {
    if workers <= 1 || images.len() <= 1 {
        return images.iter().map(|img| run_one(target, img)).collect();
    }

    let min_err = AtomicUsize::new(usize::MAX);
    let mut slots = pool.map(images.len(), workers, |idx| {
        if idx > min_err.load(Ordering::Acquire) {
            return None;
        }
        let r = run_one(target, &images[idx]);
        if r.is_err() {
            min_err.fetch_min(idx, Ordering::AcqRel);
        }
        Some(r)
    });
    let cut = min_err.load(Ordering::Acquire);
    if cut != usize::MAX {
        // The task that set the cut ran to completion, so its slot holds
        // the error the serial path would have stopped at.
        return match slots.swap_remove(cut) {
            Some(Err(e)) => Err(e),
            _ => unreachable!("cut index {cut} must hold an executed error"),
        };
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(r) => r,
            None => unreachable!("no task is skipped when no error occurred"),
        })
        .collect()
}

/// How strongly the observations pinned down a layer's geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// No boundary signal at all; a prior filled the gap.
    Default,
    /// Measurement consistent with, but strictly coarser than, the choice.
    Coarse,
    /// A hypothesis pattern matched the measurement exactly.
    Exact,
}

struct Classified {
    kind: LayerKind,
    alternatives: Vec<LayerKind>,
    rows: Option<Vec<Vec<Sym>>>,
    hw: Option<(usize, usize)>,
    confidence: Confidence,
}

impl Classified {
    fn new(
        kind: LayerKind,
        alternatives: Vec<LayerKind>,
        rows: Option<Vec<Vec<Sym>>>,
        hw: Option<(usize, usize)>,
        confidence: Confidence,
    ) -> Self {
        Classified {
            kind,
            alternatives,
            rows,
            hw,
            confidence,
        }
    }
}

/// Observation context for one layer's classification. Fields are `None`
/// when the channel hides them (restricted channels degrade to priors).
struct LayerContext {
    weight_bytes: Option<u64>,
    input_bytes: Option<u64>,
    output_bytes: Option<u64>,
    /// Whether any weightless layer (pool/add/GAP) executes later — i.e.
    /// this layer still sits inside the convolutional trunk.
    in_trunk: bool,
    /// Whether this is the final observed layer (the classifier position).
    is_last: bool,
}

/// Repairs a residual join whose two input branches disagree on spatial
/// size: the producer of the less-trusted branch gets its stride replaced
/// so its output matches the trusted branch, and its symbolic rows are
/// rebuilt with the corrected geometry.
fn reconcile_join(
    inputs: &[TensorId],
    layers: &mut [RecoveredLayer],
    confidences: &[Confidence],
    tensor_rows: &mut [Option<Vec<Vec<Sym>>>],
    tensor_hw: &mut [Option<(usize, usize)>],
    vars: &mut VarSource,
) {
    let (ta, tb) = (inputs[0], inputs[1]);
    let (Some(hwa), Some(hwb)) = (tensor_hw[ta], tensor_hw[tb]) else {
        return;
    };
    if hwa == hwb {
        return;
    }
    // Producer layer of tensor t is layer t-1 (the network input, tensor 0,
    // has no producer and is never the wrong branch to fix).
    let conf_of = |t: TensorId| -> Confidence {
        if t == 0 {
            Confidence::Exact
        } else {
            confidences
                .get(t - 1)
                .copied()
                .unwrap_or(Confidence::Default)
        }
    };
    let (fix_tensor, target_hw) = if conf_of(ta) >= conf_of(tb) {
        (tb, hwa)
    } else {
        (ta, hwb)
    };
    if fix_tensor == 0 {
        return;
    }
    let producer = fix_tensor - 1;
    let LayerKind::Conv { kernel, .. } = layers[producer].kind else {
        return;
    };
    let src = layers[producer].inputs[0];
    let Some((_, src_w)) = tensor_hw[src] else {
        return;
    };
    if target_hw.1 == 0 || src_w < target_hw.1 {
        return;
    }
    let stride = (src_w as f64 / target_hw.1 as f64).round().max(1.0) as usize;
    let hyp = ConvHypothesis { kernel, stride };
    let layer = SymConvLayer::new(hyp, vars);
    let new_rows = tensor_rows[src]
        .as_ref()
        .map(|rows| rows.iter().map(|r| layer.apply(r)).collect::<Vec<_>>());
    tensor_rows[fix_tensor] = new_rows;
    tensor_hw[fix_tensor] = Some(target_hw);
    layers[producer].kind = LayerKind::Conv {
        kernel: hyp.kernel,
        stride: hyp.stride,
    };
    layers[producer].out_hw = Some(target_hw);
}

fn classify_layer(
    ctx: &LayerContext,
    input_rows: &[Option<&Vec<Vec<Sym>>>],
    input_hw: &[Option<(usize, usize)>],
    meas: &Pattern,
    cfg: &ProberConfig,
    vars: &mut VarSource,
) -> Classified {
    // Residual join: two inputs.
    if input_rows.len() == 2 {
        if let (Some(a), Some(b)) = (input_rows[0], input_rows[1]) {
            // A length mismatch means one branch's stride was misjudged;
            // degrade gracefully (layers downstream of the join are then
            // classified without a symbolic prefix).
            if a.len() == b.len() && a.iter().zip(b).all(|(ra, rb)| ra.len() == rb.len()) {
                let rows: Vec<Vec<Sym>> = a.iter().zip(b).map(|(ra, rb)| sym_add(ra, rb)).collect();
                return Classified::new(
                    LayerKind::Add,
                    Vec::new(),
                    Some(rows),
                    input_hw[0],
                    Confidence::Exact,
                );
            }
        }
        return Classified::new(
            LayerKind::Add,
            Vec::new(),
            None,
            input_hw[0],
            Confidence::Coarse,
        );
    }

    let Some(rows) = input_rows.first().copied().flatten() else {
        // Upstream geometry already lost (past the head).
        return Classified::new(
            LayerKind::Dense,
            Vec::new(),
            None,
            None,
            Confidence::Default,
        );
    };
    let hw = input_hw[0];

    if ctx.weight_bytes == Some(0) {
        // Pooling (or global pooling, which matches no finite factor).
        // A factor-f pool shrinks the transfer volume by at most ~f^2
        // (modulo density changes); global pooling collapses it entirely,
        // so a volume sanity check separates the two even when the tiny
        // pooled output's nnz saturates (pattern all-equal).
        let mut accepted: Vec<(usize, Pattern, SymPoolLayer)> = Vec::new();
        for &factor in &cfg.pools {
            // Max pooling can only shrink the encoded volume by at most
            // f^2: the bitmap shrinks by exactly f^2 and each output cell
            // is non-zero iff its window holds any non-zero, so
            // out * f^2 >= in (up to byte rounding). Global pooling
            // collapses far below that; 1.5x slack absorbs the rounding.
            let volume_ok = match (ctx.output_bytes, ctx.input_bytes) {
                (Some(out), Some(inp)) => {
                    out.saturating_mul((factor * factor * 3) as u64) >= inp.saturating_mul(2)
                }
                // A channel hiding volumes cannot rule the factor out.
                _ => true,
            };
            if !volume_ok {
                continue;
            }
            let layer = SymPoolLayer::new(factor, vars);
            let hyp = hypothesis_pattern(rows, |r| layer.apply(r));
            if meas.is_coarsening_of(&hyp) {
                accepted.push((factor, hyp, layer));
            }
        }
        let alternatives: Vec<LayerKind> = accepted
            .iter()
            .map(|(f, _, _)| LayerKind::Pool { factor: *f })
            .collect();
        if let Some((factor, pat, layer)) = pick_pool(accepted, meas) {
            let out_rows: Vec<Vec<Sym>> = rows.iter().map(|r| layer.apply(r)).collect();
            let out_hw = hw.map(|(h, w)| (h / factor, w / factor));
            let confidence = if &pat == meas {
                Confidence::Exact
            } else {
                Confidence::Coarse
            };
            return Classified::new(
                LayerKind::Pool { factor },
                alternatives,
                Some(out_rows),
                out_hw,
                confidence,
            );
        }
        // No finite pooling factor explains the measurement: global pooling
        // (geometry recovery stops along this path — spatial info is gone).
        return Classified::new(
            LayerKind::GlobalPool,
            Vec::new(),
            None,
            None,
            Confidence::Coarse,
        );
    }

    // Head fully-connected layers destroy all spatial structure: their
    // patterns either saturate flat (tiny logit nnz) or never converge at
    // all. A never-converging pattern is also what a *saturated-depth*
    // conv produces, so position disambiguates: past the last weightless
    // layer (pool/add/GAP) a structureless pattern means a dense layer.
    if !ctx.in_trunk
        && !ctx.is_last
        && !meas.is_empty()
        && meas.class_count() == meas.len()
        && meas.len() >= 4
    {
        return Classified::new(LayerKind::Dense, Vec::new(), None, None, Confidence::Coarse);
    }

    // Weighted layer: convolution hypotheses.
    let mut accepted: Vec<(ConvHypothesis, Pattern, SymConvLayer)> = Vec::new();
    for &kernel in &cfg.kernels {
        for &stride in &cfg.strides {
            let hyp = ConvHypothesis { kernel, stride };
            let layer = SymConvLayer::new(hyp, vars);
            let pat = hypothesis_pattern(rows, |r| layer.apply(r));
            if meas.is_coarsening_of(&pat) {
                accepted.push((hyp, pat, layer));
            }
        }
    }

    // Hypotheses whose predicted pattern equals the measurement exactly
    // (the §5.4 "longest non-convergent pattern" rule).
    let mut exact: Vec<(ConvHypothesis, SymConvLayer)> = Vec::new();
    let mut rest: Vec<(ConvHypothesis, Pattern, SymConvLayer)> = Vec::new();
    for (h, p, l) in accepted {
        if &p == meas {
            exact.push((h, l));
        } else {
            rest.push((h, p, l));
        }
    }

    let make_conv = |hyp: ConvHypothesis,
                     layer: &SymConvLayer,
                     alternatives: Vec<LayerKind>,
                     confidence: Confidence|
     -> Classified {
        let out_rows: Vec<Vec<Sym>> = rows.iter().map(|r| layer.apply(r)).collect();
        let out_hw = hw.map(|(h, w)| {
            (
                conv_out_dim(h, hyp.kernel, hyp.stride, Padding::Same),
                conv_out_dim(w, hyp.kernel, hyp.stride, Padding::Same),
            )
        });
        Classified::new(
            LayerKind::Conv {
                kernel: hyp.kernel,
                stride: hyp.stride,
            },
            alternatives,
            Some(out_rows),
            out_hw,
            confidence,
        )
    };

    if !exact.is_empty() {
        // Several geometries can predict the same (saturated) pattern at
        // narrow deep maps; the observable carries no more bits, so break
        // ties with a common-CNN prior (3x3/1 first).
        let alternatives: Vec<LayerKind> = exact
            .iter()
            .map(|(h, _)| LayerKind::Conv {
                kernel: h.kernel,
                stride: h.stride,
            })
            .collect();
        exact.sort_by_key(|(h, _)| prior_rank(*h));
        let multiple = exact.len() > 1;
        let (hyp, layer) = exact.remove(0);
        let confidence = if multiple {
            Confidence::Coarse
        } else {
            Confidence::Exact
        };
        return make_conv(hyp, &layer, alternatives, confidence);
    }

    if meas.class_count() <= 1 {
        // The layer's nnz never reacted to any probe: no boundary signal at
        // all. Inside the conv trunk (weightless layers still downstream)
        // the prior says "3x3 conv"; in the head it is a dense layer.
        if ctx.in_trunk {
            let kernel = if cfg.kernels.contains(&3) {
                3
            } else {
                cfg.kernels.first().copied().unwrap_or(3)
            };
            let hyp = ConvHypothesis { kernel, stride: 1 };
            let layer = SymConvLayer::new(hyp, vars);
            let alternatives = cfg
                .kernels
                .iter()
                .flat_map(|&k| {
                    cfg.strides.iter().map(move |&s| LayerKind::Conv {
                        kernel: k,
                        stride: s,
                    })
                })
                .collect();
            return make_conv(hyp, &layer, alternatives, Confidence::Default);
        }
        return Classified::new(
            LayerKind::Dense,
            Vec::new(),
            None,
            None,
            Confidence::Default,
        );
    }

    if !rest.is_empty() {
        // The measurement carries signal but is strictly coarser than every
        // surviving hypothesis: keep the most conservative one.
        let alternatives: Vec<LayerKind> = rest
            .iter()
            .map(|(h, _, _)| LayerKind::Conv {
                kernel: h.kernel,
                stride: h.stride,
            })
            .collect();
        rest.sort_by_key(|(h, p, _)| (p.class_count(), prior_rank(*h)));
        let (hyp, _, layer) = rest.remove(0);
        return make_conv(hyp, &layer, alternatives, Confidence::Coarse);
    }

    // No convolution geometry survives: fully connected head layer.
    Classified::new(LayerKind::Dense, Vec::new(), None, None, Confidence::Coarse)
}

/// Classifies one layer from its GEMM call dimensions alone (the
/// Cache-Telepathy readout, Yan et al.).
///
/// * Kernel: the live tap count `k` satisfies `k <= C·R·S`, and with the
///   mild density the paper assumes, `k > C·r²` for every `r < R` — so the
///   smallest candidate `r` with `C·r² >= k` is the kernel. NNReArch pads
///   `k` up to a tile multiple, pushing the inference *past* the true
///   kernel (27 live taps padded to 32 reads as 5x5 when `C = 3`).
/// * Stride: under `Same` padding the output size `ceil(d/s)` is
///   kernel-independent, so `n = P·Q` names the smallest stride with
///   `ceil(h/s)·ceil(w/s) == n`. An un-observed pooling layer folds into
///   the stride estimate (pool/2 + conv/1 reads as conv/2 — the classic
///   GEMM-channel ambiguity); a padded `n` matches no candidate at all.
///
/// When either inference fails the layer falls back to the common-CNN
/// prior with an unknown output size, and — since the next layer's input
/// geometry is then unknown too — the degradation cascades. That cascade
/// is exactly what the channel × defence matrix measures for NNReArch.
fn classify_gemm(
    g: GemmShape,
    in_hw: Option<(usize, usize)>,
    in_c: Option<usize>,
    cfg: &ProberConfig,
) -> Classified {
    let mut kernels = cfg.kernels.clone();
    kernels.sort_unstable();
    let kernel = in_c.and_then(|c| kernels.iter().copied().find(|&r| c * r * r >= g.k));
    let stride = in_hw.and_then(|(h, w)| {
        let mut strides = cfg.strides.clone();
        strides.sort_unstable();
        strides.into_iter().find(|&s| {
            conv_out_dim(h, 1, s, Padding::Same) * conv_out_dim(w, 1, s, Padding::Same) == g.n
        })
    });
    if let (Some(kernel), Some(stride), Some((h, w))) = (kernel, stride, in_hw) {
        let hw = (
            conv_out_dim(h, kernel, stride, Padding::Same),
            conv_out_dim(w, kernel, stride, Padding::Same),
        );
        return Classified::new(
            LayerKind::Conv { kernel, stride },
            vec![LayerKind::Conv { kernel, stride }],
            None,
            Some(hw),
            Confidence::Exact,
        );
    }
    let kernel = kernel.unwrap_or_else(|| {
        if cfg.kernels.contains(&3) {
            3
        } else {
            cfg.kernels.first().copied().unwrap_or(3)
        }
    });
    let alternatives = cfg
        .kernels
        .iter()
        .flat_map(|&k| {
            cfg.strides.iter().map(move |&s| LayerKind::Conv {
                kernel: k,
                stride: s,
            })
        })
        .collect();
    Classified::new(
        LayerKind::Conv { kernel, stride: 1 },
        alternatives,
        None,
        None,
        Confidence::Default,
    )
}

/// Common-CNN prior ordering over conv hypotheses: 3x3/1 first, then the
/// remaining stride-1 kernels small-to-large, then stride-2 variants.
fn prior_rank(h: ConvHypothesis) -> (usize, usize, usize) {
    let preferred = usize::from(!(h.kernel == 3 && h.stride == 1));
    (preferred, h.stride, h.kernel)
}

fn hypothesis_pattern<F: Fn(&[Sym]) -> Vec<Sym>>(rows: &[Vec<Sym>], f: F) -> Pattern {
    let sigs: Vec<Vec<Sym>> = rows.iter().map(|r| multiset_signature(&f(r))).collect();
    Pattern::of(&sigs)
}

fn pick_pool(
    mut accepted: Vec<(usize, Pattern, SymPoolLayer)>,
    meas: &Pattern,
) -> Option<(usize, Pattern, SymPoolLayer)> {
    if accepted.is_empty() {
        return None;
    }
    accepted.sort_by_key(|(f, _, _)| *f);
    if let Some(pos) = accepted.iter().position(|(_, p, _)| p == meas) {
        return Some(accepted.swap_remove(pos));
    }
    accepted.sort_by_key(|(f, p, _)| (p.class_count(), *f));
    Some(accepted.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_accel::{AccelConfig, Device, Trace, TraceSink};
    use hd_dnn::graph::{NetworkBuilder, Params};
    use hd_tensor::Shape3;

    fn device_for(net: hd_dnn::graph::Network, seed: u64) -> Device {
        let mut params = Params::init(&net, seed);
        let profile = hd_dnn::prune::paper_profile(&net);
        hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, seed ^ 1);
        Device::new(net, params, AccelConfig::eyeriss_v2())
    }

    fn small_cfg() -> ProberConfig {
        ProberConfig {
            shifts: 12,
            max_probes: 8,
            stable_probes: 2,
            kernels: vec![1, 3, 5, 7],
            strides: vec![1, 2],
            pools: vec![2, 3],
            seed: 99,
            parallelism: None,
        }
    }

    #[test]
    fn recovers_single_conv_kernel() {
        for kernel in [3usize, 5] {
            let mut b = NetworkBuilder::new(3, 16, 16);
            let x = b.input();
            b.conv(x, 8, kernel, 1);
            let dev = device_for(b.build(), 5);
            let res = probe(&dev, &small_cfg()).unwrap();
            assert_eq!(res.layers.len(), 1);
            assert_eq!(
                res.layers[0].kind,
                LayerKind::Conv { kernel, stride: 1 },
                "kernel {kernel}: pattern {}",
                res.layers[0].pattern
            );
        }
    }

    #[test]
    fn recovers_pointwise_conv_when_not_last() {
        // A lone pointwise conv as the final layer is indistinguishable
        // from a classifier head (both show no boundary effect), so test
        // the 1x1 case with a conv after it.
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 1, 1);
        b.conv(x, 8, 3, 1);
        let dev = device_for(b.build(), 5);
        let res = probe(&dev, &small_cfg()).unwrap();
        assert_eq!(
            res.layers[0].kind,
            LayerKind::Conv {
                kernel: 1,
                stride: 1
            }
        );
        assert_eq!(
            res.layers[1].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
    }

    #[test]
    fn recovers_stride_two() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        b.conv(x, 8, 3, 2);
        let dev = device_for(b.build(), 6);
        let res = probe(&dev, &small_cfg()).unwrap();
        assert_eq!(
            res.layers[0].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 2
            }
        );
        assert_eq!(res.layers[0].out_hw, Some((8, 8)));
    }

    #[test]
    fn recovers_conv_pool_conv_chain() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        b.conv(x, 8, 5, 1);
        let dev = device_for(b.build(), 7);
        let res = probe(&dev, &small_cfg()).unwrap();
        assert_eq!(res.layers.len(), 3);
        assert_eq!(
            res.layers[0].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(res.layers[1].kind, LayerKind::Pool { factor: 2 });
        assert_eq!(
            res.layers[2].kind,
            LayerKind::Conv {
                kernel: 5,
                stride: 1
            }
        );
        assert_eq!(res.layers[2].out_hw, Some((8, 8)));
    }

    #[test]
    fn classifies_head_as_dense() {
        let mut b = NetworkBuilder::new(3, 12, 12);
        let x = b.input();
        let x = b.conv(x, 6, 3, 1);
        let x = b.flatten(x);
        b.linear(x, 5);
        let dev = device_for(b.build(), 8);
        let res = probe(&dev, &small_cfg()).unwrap();
        assert_eq!(res.layers.len(), 2);
        assert_eq!(
            res.layers[0].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(res.layers[1].kind, LayerKind::Dense);
    }

    #[test]
    fn recovers_residual_block() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let stem = b.conv(x, 6, 3, 1);
        let y = b.conv(stem, 6, 3, 1);
        b.add(stem, y);
        let dev = device_for(b.build(), 9);
        let res = probe(&dev, &small_cfg()).unwrap();
        assert_eq!(res.layers.len(), 3);
        assert_eq!(res.layers[2].kind, LayerKind::Add);
        assert_eq!(res.layers[2].inputs.len(), 2);
    }

    #[test]
    fn probes_converge_before_max() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        b.conv(x, 8, 3, 1);
        let dev = device_for(b.build(), 10);
        let res = probe(&dev, &small_cfg()).unwrap();
        assert!(res.probes_used <= 8);
        assert_eq!(res.runs_used, res.probes_used * 12);
    }

    #[test]
    fn parallel_matches_serial_bit_identically() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        b.conv(x, 8, 5, 1);
        let dev = device_for(b.build(), 21);
        let serial = probe(&dev, &small_cfg().with_parallelism(Some(1))).unwrap();
        for workers in [Some(2), Some(4), Some(64), None] {
            let par = probe(&dev, &small_cfg().with_parallelism(workers)).unwrap();
            assert_eq!(serial, par, "parallelism {workers:?} diverged from serial");
        }
    }

    #[test]
    fn effective_parallelism_clamps_to_jobs() {
        let cfg = ProberConfig::default().with_parallelism(Some(8));
        assert_eq!(cfg.effective_parallelism(3), 3);
        assert_eq!(cfg.effective_parallelism(100), 8);
        assert_eq!(cfg.effective_parallelism(0), 1);
        let serial = ProberConfig::default().with_parallelism(Some(1));
        assert_eq!(serial.effective_parallelism(100), 1);
        // None = all cores: at least one worker, never more than jobs.
        let auto = ProberConfig::default();
        let w = auto.effective_parallelism(4);
        assert!((1..=4).contains(&w));
    }

    #[test]
    fn run_family_orders_results_by_image_index() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        b.conv(x, 8, 3, 1);
        let dev = device_for(b.build(), 22);
        let fams = stripe_probes(dev.input_shape(), 12, 1, 99);
        let pool = WorkerPool::new(3);
        let serial = run_family(&dev, &fams[0].images, 1, &pool).unwrap();
        // Worker caps above, below, and equal to the pool size all reduce
        // into the same index-ordered slots.
        for workers in [2, 3, 5, 12, 30] {
            let par = run_family(&dev, &fams[0].images, workers, &pool).unwrap();
            assert_eq!(serial, par, "workers = {workers}");
        }
    }

    /// Fails (empty trace → `NoWrites`) for every image whose index — read
    /// back out of the stripe the probe generator painted — is at least
    /// `fail_from`, and counts how many probes actually execute.
    struct FailingTarget {
        shape: Shape3,
        fail_from: usize,
        runs: std::sync::atomic::AtomicUsize,
    }

    impl FailingTarget {
        fn image_index(&self, image: &Tensor3) -> usize {
            // Stripe probes paint column `idx` of channel 0; recover it.
            (0..self.shape.w)
                .find(|&x| image.at(0, 0, x) != 0.0)
                .unwrap_or(0)
        }
    }

    impl ObservationModel for FailingTarget {
        fn input_shape(&self) -> Shape3 {
            self.shape
        }

        fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            let mut trace = Trace::default();
            if self.image_index(image) < self.fail_from {
                trace.events.push(hd_accel::TraceEvent {
                    time_ps: 0,
                    addr: 0x1000,
                    kind: hd_accel::AccessKind::Write,
                    bytes: 64,
                });
            }
            // Stream the trace exactly like the real channel: the empty
            // trace surfaces as the analyzer's `NoWrites` error.
            let mut sink = hd_trace::StreamingAnalyzer::new();
            for e in trace.events {
                sink.event(e);
            }
            Ok(Observation::from_trace(sink.finish()?))
        }
    }

    #[test]
    fn parallel_error_matches_serial_lowest_failing_index() {
        let shape = Shape3 { c: 1, h: 8, w: 8 };
        let fams = stripe_probes(shape, 8, 1, 7);
        let serial_target = FailingTarget {
            shape,
            fail_from: 3,
            runs: std::sync::atomic::AtomicUsize::new(0),
        };
        let serial_err =
            run_family(&serial_target, &fams[0].images, 1, &WorkerPool::new(0)).unwrap_err();
        // Serial short-circuits: exactly fail_from + 1 probes execute.
        assert_eq!(serial_target.runs.load(Ordering::SeqCst), 4);

        for threads in [0, 4] {
            let pool = WorkerPool::new(threads);
            let target = FailingTarget {
                shape,
                fail_from: 3,
                runs: std::sync::atomic::AtomicUsize::new(0),
            };
            let err = run_family(&target, &fams[0].images, 4, &pool).unwrap_err();
            assert_eq!(err, serial_err, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_error_path_cancels_probes_past_the_failure() {
        let shape = Shape3 { c: 1, h: 8, w: 8 };
        let fams = stripe_probes(shape, 8, 1, 7);
        // A zero-thread pool claims tasks in index order on the caller, so
        // cancellation is deterministic: indices past the first failure are
        // skipped without running the probe.
        let target = FailingTarget {
            shape,
            fail_from: 3,
            runs: std::sync::atomic::AtomicUsize::new(0),
        };
        let err = run_family(&target, &fams[0].images, 4, &WorkerPool::new(0)).unwrap_err();
        assert!(matches!(err, ProbeError::Trace(_)));
        assert_eq!(
            target.runs.load(Ordering::SeqCst),
            4,
            "probes past the lowest failing index must not execute"
        );
    }

    #[test]
    fn probe_with_dedicated_pool_matches_global_pool() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        b.max_pool(x, 2);
        let dev = device_for(b.build(), 23);
        let cfg = small_cfg().with_parallelism(Some(4));
        let via_global = probe(&dev, &cfg).unwrap();
        let pool = WorkerPool::new(4);
        let via_pool = probe_with_pool(&dev, &cfg, &pool).unwrap();
        assert_eq!(via_global, via_pool);
    }

    #[test]
    fn builder_matches_defaults_and_applies_setters() {
        let built = ProberConfig::builder().build().unwrap();
        let defaults = ProberConfig::default();
        assert_eq!(built.shifts, defaults.shifts);
        assert_eq!(built.kernels, defaults.kernels);
        let custom = ProberConfig::builder()
            .shifts(12)
            .max_probes(8)
            .stable_probes(2)
            .kernels(vec![3, 5])
            .strides(vec![1])
            .pools(vec![2])
            .seed(99)
            .parallelism(Some(2))
            .build()
            .unwrap();
        assert_eq!(custom.shifts, 12);
        assert_eq!(custom.kernels, vec![3, 5]);
        assert_eq!(custom.parallelism, Some(2));
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            ProberConfig::builder().shifts(0).build(),
            Err(ConfigError::ZeroField { field: "shifts" })
        );
        assert_eq!(
            ProberConfig::builder().max_probes(0).build(),
            Err(ConfigError::ZeroField {
                field: "max_probes"
            })
        );
        assert_eq!(
            ProberConfig::builder().kernels(vec![]).build(),
            Err(ConfigError::EmptyCandidates { field: "kernels" })
        );
        assert_eq!(
            ProberConfig::builder().pools(vec![]).build(),
            Err(ConfigError::EmptyCandidates { field: "pools" })
        );
        let err = ProberConfig::builder()
            .parallelism(Some(0))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroParallelism);
        assert!(err.to_string().contains("Some(1)"));
        // Struct literals remain unvalidated but can be checked explicitly.
        let raw = ProberConfig {
            shifts: 0,
            ..ProberConfig::default()
        };
        assert!(raw.validate().is_err());
    }

    /// The redesign's panic-removal regression: a malformed victim graph
    /// (stray `Input` node, unreachable via `NetworkBuilder`) used to abort
    /// the whole campaign inside `probe_into`; it must now surface as
    /// [`ProbeError::Device`].
    #[test]
    fn failing_device_surfaces_probe_error_instead_of_aborting() {
        use hd_dnn::graph::{ConvSpec, Network, Node, Op, ValueShape};
        let shape = Shape3::new(2, 8, 8);
        let net = Network::from_raw_parts(
            vec![
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Conv(ConvSpec::standard(4, 3, 1)),
                    inputs: vec![1],
                },
            ],
            shape,
            vec![
                ValueShape::Map(shape),
                ValueShape::Map(shape),
                ValueShape::Map(Shape3::new(4, 8, 8)),
            ],
            vec!["input0".into(), "input1".into(), "conv2".into()],
        );
        let params = Params::init(&net, 1);
        let dev = Device::new_unchecked(net, params, AccelConfig::eyeriss_v2());
        for parallelism in [Some(1), Some(4)] {
            let err = probe(&dev, &small_cfg().with_parallelism(parallelism)).unwrap_err();
            assert_eq!(
                err,
                ProbeError::Device(hd_accel::DeviceError::MissingProducer { node: 2, input: 1 }),
                "parallelism {parallelism:?}"
            );
        }
    }

    /// The GEMM-dimension channel names conv geometry directly: `m` bounds
    /// live filters, `k` the taps (kernel), `n` the output pixels (stride).
    #[test]
    fn gemm_channel_recovers_conv_geometry_exactly() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        b.conv(x, 12, 5, 2);
        let net = b.build();
        // Dense init: the tap counts are exact, so the kernel bound is tight.
        let params = Params::init(&net, 5);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let res = probe(&crate::channel::GemmDims::new(&dev), &small_cfg()).unwrap();
        assert_eq!(res.layers.len(), 2);
        assert_eq!(
            res.layers[0].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(res.layers[0].out_hw, Some((16, 16)));
        assert_eq!(res.layers[0].gemm.map(|g| g.m), Some(8));
        assert_eq!(
            res.layers[1].kind,
            LayerKind::Conv {
                kernel: 5,
                stride: 2
            }
        );
        assert_eq!(res.layers[1].out_hw, Some((8, 8)));
        assert_eq!(res.layers[1].gemm.map(|g| g.m), Some(12));
        // Address-blind channel: no trace analysis to reference.
        assert!(res.structure.is_none());
    }

    /// The classic GEMM-channel ambiguity: an un-observed pooling layer
    /// folds into the next conv's stride estimate.
    #[test]
    fn gemm_channel_reads_pool_conv_as_strided_conv() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        b.conv(x, 8, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 5);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let res = probe(&crate::channel::GemmDims::new(&dev), &small_cfg()).unwrap();
        assert_eq!(res.layers.len(), 2, "the pool issues no GEMM");
        assert_eq!(
            res.layers[1].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 2
            },
            "pool/2 + conv/1 is indistinguishable from conv/2"
        );
    }

    #[test]
    fn report_mentions_each_layer() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        b.max_pool(x, 2);
        let dev = device_for(b.build(), 11);
        let res = probe(&dev, &small_cfg()).unwrap();
        let r = res.report();
        assert!(r.contains("conv 3x3/1"));
        assert!(r.contains("pool /2"));
    }
}
