//! Evaluation helpers: compare recovered geometry against the oracle.
//!
//! Only experiment harnesses use this module — it needs the ground-truth
//! network, which the attacker never has.

use crate::prober::{LayerKind, ProberResult};
use hd_dnn::graph::{Network, Op};

/// Expected [`LayerKind`] sequence for a network, aligned with the observed
/// layer order (input and flatten nodes produce no observable layer).
pub fn expected_kinds(net: &Network) -> Vec<LayerKind> {
    net.nodes()
        .iter()
        .filter_map(|n| match &n.op {
            Op::Input | Op::Flatten => None,
            Op::Conv(spec) => Some(LayerKind::Conv {
                kernel: spec.kernel,
                stride: spec.stride,
            }),
            Op::DwConv { kernel, stride, .. } => Some(LayerKind::Conv {
                kernel: *kernel,
                stride: *stride,
            }),
            Op::Pool { factor, .. } => Some(LayerKind::Pool { factor: *factor }),
            Op::Add { .. } => Some(LayerKind::Add),
            Op::GlobalAvgPool => Some(LayerKind::GlobalPool),
            Op::Linear { .. } => Some(LayerKind::Dense),
        })
        .collect()
}

/// True output channel count per conv node, aligned with the conv layers
/// the prober reports.
pub fn expected_conv_channels(net: &Network) -> Vec<usize> {
    net.nodes()
        .iter()
        .filter_map(|n| match &n.op {
            Op::Conv(spec) => Some(spec.out_channels),
            Op::DwConv { .. } => net.value_shape(n.inputs[0]).as_map().map(|s| s.c),
            _ => None,
        })
        .collect()
}

/// Geometry-recovery score.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeometryScore {
    /// Layers compared.
    pub total: usize,
    /// Layers whose recovered kind exactly matches the oracle.
    pub correct: usize,
    /// `(layer index, expected, recovered)` for each mismatch.
    pub mismatches: Vec<(usize, String, String)>,
}

impl GeometryScore {
    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// True when every layer matched.
    pub fn perfect(&self) -> bool {
        self.total > 0 && self.correct == self.total
    }
}

/// Scores a prober result against the oracle network.
pub fn score_geometry(oracle: &Network, result: &ProberResult) -> GeometryScore {
    let expected = expected_kinds(oracle);
    score_kinds(
        &expected,
        &result.layers.iter().map(|l| l.kind).collect::<Vec<_>>(),
    )
}

/// Scores only the conv layers, index-aligned within each side's conv
/// subsequence. This is the fair score for channels that cannot see
/// weightless layers at all (the GEMM channel observes one call per conv
/// and nothing else): [`score_geometry`] would charge them for every pool
/// they structurally cannot report, hiding whether the convs themselves
/// came out right.
pub fn score_conv_geometry(oracle: &Network, result: &ProberResult) -> GeometryScore {
    let expected: Vec<LayerKind> = expected_kinds(oracle)
        .into_iter()
        .filter(|k| matches!(k, LayerKind::Conv { .. }))
        .collect();
    let got: Vec<LayerKind> = result
        .layers
        .iter()
        .map(|l| l.kind)
        .filter(|k| matches!(k, LayerKind::Conv { .. }))
        .collect();
    score_kinds(&expected, &got)
}

fn score_kinds(expected: &[LayerKind], got: &[LayerKind]) -> GeometryScore {
    let total = expected.len().max(got.len());
    let mut correct = 0;
    let mut mismatches = Vec::new();
    for i in 0..total {
        let e = expected.get(i);
        let g = got.get(i);
        match (e, g) {
            (Some(e), Some(g)) if e == g => correct += 1,
            (e, g) => mismatches.push((
                i,
                e.map_or("<missing>".to_string(), |k| k.to_string()),
                g.map_or("<missing>".to_string(), |k| k.to_string()),
            )),
        }
    }
    GeometryScore {
        total,
        correct,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_dnn::graph::NetworkBuilder;

    #[test]
    fn expected_kinds_skip_input_and_flatten() {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.flatten(x);
        b.linear(x, 10);
        let net = b.build();
        let kinds = expected_kinds(&net);
        assert_eq!(
            kinds,
            vec![
                LayerKind::Conv {
                    kernel: 3,
                    stride: 1
                },
                LayerKind::Pool { factor: 2 },
                LayerKind::Dense
            ]
        );
    }

    #[test]
    fn expected_conv_channels_in_order() {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.conv(x, 12, 3, 1);
        b.global_avg_pool(x);
        let net = b.build();
        assert_eq!(expected_conv_channels(&net), vec![4, 12]);
    }

    #[test]
    fn score_counts_mismatches() {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        b.conv(x, 4, 3, 1);
        let net = b.build();
        // A fabricated prober result with the wrong kernel.
        let result = ProberResult {
            layers: vec![crate::prober::RecoveredLayer {
                index: 0,
                inputs: vec![0],
                kind: LayerKind::Conv {
                    kernel: 5,
                    stride: 1,
                },
                alternatives: vec![],
                out_hw: Some((8, 8)),
                pattern: crate::pattern::Pattern::of(&[0u8]),
                weight_bytes: 1,
                output_bytes: 1,
                encode_window_ps: 1,
                gemm: None,
            }],
            probes_used: 1,
            runs_used: 1,
            structure: None,
        };
        let score = score_geometry(&net, &result);
        assert_eq!(score.total, 1);
        assert_eq!(score.correct, 0);
        assert!(!score.perfect());
        assert_eq!(score.mismatches.len(), 1);
    }

    #[test]
    fn conv_score_ignores_weightless_layers() {
        // conv - pool - conv oracle against a result that only saw the two
        // convs (as the GEMM channel would): full score is charged for the
        // invisible pool, the conv score is not.
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        b.conv(x, 8, 3, 1);
        let net = b.build();
        let conv = |index: usize| crate::prober::RecoveredLayer {
            index,
            inputs: vec![index],
            kind: LayerKind::Conv {
                kernel: 3,
                stride: 1,
            },
            alternatives: vec![],
            out_hw: None,
            pattern: crate::pattern::Pattern::of(&[0u8]),
            weight_bytes: 1,
            output_bytes: 1,
            encode_window_ps: 0,
            gemm: None,
        };
        let result = ProberResult {
            layers: vec![conv(0), conv(1)],
            probes_used: 1,
            runs_used: 1,
            structure: None,
        };
        assert!(!score_geometry(&net, &result).perfect());
        let conv_score = score_conv_geometry(&net, &result);
        assert!(
            conv_score.perfect(),
            "mismatches: {:?}",
            conv_score.mismatches
        );
        assert_eq!(conv_score.total, 2);
    }
}
