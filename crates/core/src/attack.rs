//! End-to-end HuffDuff attack orchestration.
//!
//! Glues the pieces together exactly as the paper does: probe the boundary
//! effect for geometry (§5–6), read the encoding timing channel for channel
//! ratios (§7), and finalize a small candidate space via the first-layer
//! sparsity bound (§8.2).

use crate::prober::{probe, ConfigError, ProbeError, ProbeTarget, ProberConfig, ProberResult};
use crate::solution::{finalize, CodecModel, SolutionError, SolutionSpace};
use crate::timing::{channel_ratios, ChannelRatios, TimingError};
use std::fmt;

/// Full attack configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackConfig {
    /// Prober settings.
    pub prober: ProberConfig,
    /// Attacker's model of the device's transfer codec (datasheet).
    pub codec: CodecModel,
    /// Empirical bound on first-layer weight sparsity (paper: 60%).
    pub first_layer_max_sparsity: f64,
    /// Number of output classes (observable from the device API).
    pub classes: usize,
    /// Upper bound on any channel count considered.
    pub max_k: usize,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            prober: ProberConfig::default(),
            codec: CodecModel::default(),
            first_layer_max_sparsity: 0.6,
            classes: 10,
            max_k: 1024,
        }
    }
}

/// Validating builder for [`AttackConfig`], seeded with the defaults.
///
/// ```
/// use huffduff_core::attack::AttackConfig;
/// use huffduff_core::prober::ProberConfig;
/// let cfg = AttackConfig::builder()
///     .prober(ProberConfig::builder().shifts(12).build().unwrap())
///     .classes(4)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.classes, 4);
///
/// assert!(AttackConfig::builder().classes(0).build().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct AttackConfigBuilder {
    cfg: AttackConfig,
}

impl AttackConfigBuilder {
    /// Prober settings (validate them with [`ProberConfig::builder`] or
    /// rely on the nested check in [`AttackConfigBuilder::build`]).
    pub fn prober(mut self, prober: ProberConfig) -> Self {
        self.cfg.prober = prober;
        self
    }

    /// The attacker's codec model of the device.
    pub fn codec(mut self, codec: CodecModel) -> Self {
        self.cfg.codec = codec;
        self
    }

    /// Empirical bound on first-layer weight sparsity.
    pub fn first_layer_max_sparsity(mut self, bound: f64) -> Self {
        self.cfg.first_layer_max_sparsity = bound;
        self
    }

    /// Number of output classes.
    pub fn classes(mut self, classes: usize) -> Self {
        self.cfg.classes = classes;
        self
    }

    /// Upper bound on any channel count considered.
    pub fn max_k(mut self, max_k: usize) -> Self {
        self.cfg.max_k = max_k;
        self
    }

    /// Validates (including the nested prober config) and produces the
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero counts, an out-of-range sparsity
    /// bound, or an invalid nested [`ProberConfig`].
    pub fn build(self) -> Result<AttackConfig, ConfigError> {
        self.cfg.prober.validate()?;
        for (field, value) in [("classes", self.cfg.classes), ("max_k", self.cfg.max_k)] {
            if value == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        let bound = self.cfg.first_layer_max_sparsity;
        if !(bound.is_finite() && 0.0 < bound && bound <= 1.0) {
            return Err(ConfigError::FractionOutOfRange {
                field: "first_layer_max_sparsity",
                got: bound,
            });
        }
        Ok(self.cfg)
    }
}

impl AttackConfig {
    /// A validating builder seeded with [`AttackConfig::default`].
    pub fn builder() -> AttackConfigBuilder {
        AttackConfigBuilder::default()
    }
}

/// Everything the attack recovered. `PartialEq` exists so the telemetry
/// invariance test can assert bit-identical outcomes with `hd_obs` on/off.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackOutcome {
    /// Geometry recovery (per-layer kinds, kernels, strides, pools).
    pub prober: ProberResult,
    /// Timing-channel channel ratios.
    pub ratios: ChannelRatios,
    /// Finalized candidate space.
    pub space: SolutionSpace,
}

impl AttackOutcome {
    /// Human-readable end-to-end report.
    pub fn report(&self) -> String {
        let mut s = self.prober.report();
        s.push_str(&format!(
            "timing channel: {} conv layers, ratios {:?}\n",
            self.ratios.ratios.len(),
            self.ratios
                .ratios
                .iter()
                .map(|(_, r)| (r * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        ));
        s.push_str(&self.space.report());
        s.push('\n');
        s
    }
}

/// Attack failure modes.
#[derive(Clone, Debug, PartialEq)]
pub enum AttackError {
    /// Probing failed.
    Probe(ProbeError),
    /// Timing-channel extraction failed.
    Timing(TimingError),
    /// Solution-space finalization failed.
    Solution(SolutionError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Probe(e) => write!(f, "probing failed: {e}"),
            AttackError::Timing(e) => write!(f, "timing channel failed: {e}"),
            AttackError::Solution(e) => write!(f, "finalization failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<ProbeError> for AttackError {
    fn from(e: ProbeError) -> Self {
        AttackError::Probe(e)
    }
}

impl From<TimingError> for AttackError {
    fn from(e: TimingError) -> Self {
        AttackError::Timing(e)
    }
}

impl From<SolutionError> for AttackError {
    fn from(e: SolutionError) -> Self {
        AttackError::Solution(e)
    }
}

/// Runs the full HuffDuff attack against a probeable target.
///
/// # Errors
///
/// Returns [`AttackError`] if any stage cannot complete.
pub fn run(target: &dyn ProbeTarget, cfg: &AttackConfig) -> Result<AttackOutcome, AttackError> {
    let _run_span = hd_obs::span("attack.run", "");
    let prober = {
        let _stage = hd_obs::span("attack.stage", "probe");
        probe(target, &cfg.prober)?
    };
    let ratios = {
        let _stage = hd_obs::span("attack.stage", "timing");
        channel_ratios(&prober)?
    };
    let space = {
        let _stage = hd_obs::span("attack.stage", "finalize");
        finalize(
            &prober,
            &ratios,
            target.input_shape(),
            cfg.classes,
            &cfg.codec,
            cfg.first_layer_max_sparsity,
            cfg.max_k,
        )?
    };
    Ok(AttackOutcome {
        prober,
        ratios,
        space,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_accel::{AccelConfig, Device};
    use hd_dnn::graph::{NetworkBuilder, Params};

    fn victim() -> Device {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 16, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 4);
        let net = b.build();
        let mut params = Params::init(&net, 5);
        // Moderate pruning: the paper-scale profile (99.8% on the largest
        // layer) is calibrated for 512-channel layers; at 8–16 channels it
        // would leave almost no weights and no observable boundary effect.
        let profile = hd_dnn::prune::SparsityProfile {
            targets: net
                .weighted_nodes()
                .iter()
                .enumerate()
                .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
                .collect(),
        };
        hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 6);
        Device::new(net, params, AccelConfig::eyeriss_v2())
    }

    fn cfg() -> AttackConfig {
        AttackConfig {
            prober: ProberConfig {
                shifts: 12,
                max_probes: 8,
                stable_probes: 2,
                kernels: vec![1, 3, 5],
                strides: vec![1, 2],
                pools: vec![2, 3],
                seed: 77,
                parallelism: None,
            },
            classes: 4,
            max_k: 256,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_attack_recovers_victim() {
        let dev = victim();
        let out = run(&dev, &cfg()).unwrap();

        // Geometry.
        use crate::prober::LayerKind;
        assert_eq!(
            out.prober.layers[0].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(out.prober.layers[1].kind, LayerKind::Pool { factor: 2 });
        assert_eq!(
            out.prober.layers[2].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(out.prober.layers[3].kind, LayerKind::GlobalPool);
        assert_eq!(out.prober.layers[4].kind, LayerKind::Dense);

        // Channel ratio conv2/conv1 = 16/8 = 2.
        let r = out.ratios.ratios[1].1;
        assert!((r - 2.0).abs() < 0.25, "ratio {r}");

        // The true k1 = 8 is inside the finalized range.
        assert!(
            out.space.k1_candidates.contains(&8),
            "range {:?}",
            out.space.k1_candidates
        );
        // The space is small (tens, not thousands).
        assert!(out.space.count() < 50, "count {}", out.space.count());

        // Candidates rebuild into runnable networks.
        let arch = out.space.candidate(8);
        let net = out.space.build_network(&arch);
        let params = hd_dnn::graph::Params::init(&net, 1);
        let fwd = net.forward(&params, &hd_tensor::Tensor3::full(3, 16, 16, 0.5));
        assert_eq!(fwd.logits().len(), 4);

        // Report covers all stages.
        let rep = out.report();
        assert!(rep.contains("prober"));
        assert!(rep.contains("timing channel"));
        assert!(rep.contains("solution space"));
    }

    #[test]
    fn attack_builder_validates_nested_and_own_fields() {
        use crate::prober::ConfigError;
        let cfg = AttackConfig::builder()
            .classes(4)
            .max_k(256)
            .first_layer_max_sparsity(0.5)
            .build()
            .unwrap();
        assert_eq!(cfg.classes, 4);
        assert_eq!(cfg.max_k, 256);
        assert_eq!(
            AttackConfig::builder().classes(0).build(),
            Err(ConfigError::ZeroField { field: "classes" })
        );
        assert_eq!(
            AttackConfig::builder().max_k(0).build(),
            Err(ConfigError::ZeroField { field: "max_k" })
        );
        assert!(matches!(
            AttackConfig::builder()
                .first_layer_max_sparsity(1.5)
                .build(),
            Err(ConfigError::FractionOutOfRange { .. })
        ));
        // The nested prober config is re-validated at attack build time.
        assert_eq!(
            AttackConfig::builder()
                .prober(ProberConfig {
                    shifts: 0,
                    ..ProberConfig::default()
                })
                .build(),
            Err(ConfigError::ZeroField { field: "shifts" })
        );
    }

    #[test]
    fn sampled_candidates_are_distinct_and_buildable() {
        let dev = victim();
        let out = run(&dev, &cfg()).unwrap();
        let samples = out.space.sample(4, 9);
        assert!(samples.len() <= 4 && !samples.is_empty());
        let mut k1s: Vec<usize> = samples.iter().map(|a| a.k1).collect();
        k1s.dedup();
        assert_eq!(k1s.len(), samples.len(), "duplicate k1 sampled");
        for arch in &samples {
            let net = out.space.build_network(arch);
            assert!(net.len() > 3);
        }
    }
}
