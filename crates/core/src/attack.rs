//! End-to-end HuffDuff attack orchestration.
//!
//! Glues the pieces together exactly as the paper does: probe the boundary
//! effect for geometry (§5–6), read the encoding timing channel for channel
//! ratios (§7), and finalize a small candidate space via the first-layer
//! sparsity bound (§8.2).

use crate::channel::ObservationModel;
use crate::prober::{probe, ConfigError, ProbeError, ProberConfig, ProberResult};
use crate::solution::{finalize, CodecModel, SolutionSpace};
use crate::timing::{channel_ratios, ChannelRatios};
use std::fmt;

/// Full attack configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackConfig {
    /// Prober settings.
    pub prober: ProberConfig,
    /// Attacker's model of the device's transfer codec (datasheet).
    pub codec: CodecModel,
    /// Empirical bound on first-layer weight sparsity (paper: 60%).
    pub first_layer_max_sparsity: f64,
    /// Number of output classes (observable from the device API).
    pub classes: usize,
    /// Upper bound on any channel count considered.
    pub max_k: usize,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            prober: ProberConfig::default(),
            codec: CodecModel::default(),
            first_layer_max_sparsity: 0.6,
            classes: 10,
            max_k: 1024,
        }
    }
}

/// Validating builder for [`AttackConfig`], seeded with the defaults.
///
/// ```
/// use huffduff_core::attack::AttackConfig;
/// use huffduff_core::prober::ProberConfig;
/// let cfg = AttackConfig::builder()
///     .prober(ProberConfig::builder().shifts(12).build().unwrap())
///     .classes(4)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.classes, 4);
///
/// assert!(AttackConfig::builder().classes(0).build().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct AttackConfigBuilder {
    cfg: AttackConfig,
}

impl AttackConfigBuilder {
    /// Prober settings (validate them with [`ProberConfig::builder`] or
    /// rely on the nested check in [`AttackConfigBuilder::build`]).
    pub fn prober(mut self, prober: ProberConfig) -> Self {
        self.cfg.prober = prober;
        self
    }

    /// The attacker's codec model of the device.
    pub fn codec(mut self, codec: CodecModel) -> Self {
        self.cfg.codec = codec;
        self
    }

    /// Empirical bound on first-layer weight sparsity.
    pub fn first_layer_max_sparsity(mut self, bound: f64) -> Self {
        self.cfg.first_layer_max_sparsity = bound;
        self
    }

    /// Number of output classes.
    pub fn classes(mut self, classes: usize) -> Self {
        self.cfg.classes = classes;
        self
    }

    /// Upper bound on any channel count considered.
    pub fn max_k(mut self, max_k: usize) -> Self {
        self.cfg.max_k = max_k;
        self
    }

    /// Validates (including the nested prober config) and produces the
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero counts, an out-of-range sparsity
    /// bound, or an invalid nested [`ProberConfig`].
    pub fn build(self) -> Result<AttackConfig, ConfigError> {
        self.cfg.prober.validate()?;
        for (field, value) in [("classes", self.cfg.classes), ("max_k", self.cfg.max_k)] {
            if value == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        let bound = self.cfg.first_layer_max_sparsity;
        if !(bound.is_finite() && 0.0 < bound && bound <= 1.0) {
            return Err(ConfigError::FractionOutOfRange {
                field: "first_layer_max_sparsity",
                got: bound,
            });
        }
        Ok(self.cfg)
    }
}

impl AttackConfig {
    /// A validating builder seeded with [`AttackConfig::default`].
    pub fn builder() -> AttackConfigBuilder {
        AttackConfigBuilder::default()
    }
}

/// Everything the attack recovered. `PartialEq` exists so the telemetry
/// invariance test can assert bit-identical outcomes with `hd_obs` on/off.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackOutcome {
    /// Geometry recovery (per-layer kinds, kernels, strides, pools).
    pub prober: ProberResult,
    /// Timing-channel channel ratios, when the observation channel carries
    /// enough signal to extract them (`None` under volume-only channels).
    pub ratios: Option<ChannelRatios>,
    /// Finalized candidate space, when the recovered geometry supports one
    /// (`None` when no conv layer or footprint survived the channel).
    pub space: Option<SolutionSpace>,
}

impl AttackOutcome {
    /// Human-readable end-to-end report.
    pub fn report(&self) -> String {
        let mut s = self.prober.report();
        match &self.ratios {
            Some(ratios) => s.push_str(&format!(
                "timing channel: {} conv layers, ratios {:?}\n",
                ratios.ratios.len(),
                ratios
                    .ratios
                    .iter()
                    .map(|(_, r)| (r * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            )),
            None => s.push_str("timing channel: no signal on this observation channel\n"),
        }
        match &self.space {
            Some(space) => s.push_str(&space.report()),
            None => s.push_str("solution space: not recoverable from this channel"),
        }
        s.push('\n');
        s
    }
}

/// Attack failure modes.
///
/// Only probing is fatal: a channel too weak for the timing or
/// finalization stages yields an [`AttackOutcome`] with those fields
/// `None` (partial recovery is the interesting datum in a channel ×
/// defence comparison, not an error).
#[derive(Clone, Debug, PartialEq)]
pub enum AttackError {
    /// Probing failed.
    Probe(ProbeError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Probe(e) => write!(f, "probing failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<ProbeError> for AttackError {
    fn from(e: ProbeError) -> Self {
        AttackError::Probe(e)
    }
}

/// Runs the full HuffDuff attack against an observation model.
///
/// # Errors
///
/// Returns [`AttackError`] if probing cannot complete; downstream stages
/// degrade to `None` fields instead of failing the attack.
pub fn run(
    target: &dyn ObservationModel,
    cfg: &AttackConfig,
) -> Result<AttackOutcome, AttackError> {
    let _run_span = hd_obs::span("attack.run", "");
    let prober = {
        let _stage = hd_obs::span("attack.stage", "probe");
        probe(target, &cfg.prober)?
    };
    let ratios = {
        let _stage = hd_obs::span("attack.stage", "timing");
        channel_ratios(&prober).ok()
    };
    let space = {
        let _stage = hd_obs::span("attack.stage", "finalize");
        // Without timing ratios the space still gets a first-layer range;
        // deeper channel counts then scale by nothing (empty ratio list).
        let ratios_for_space = ratios.clone().unwrap_or(ChannelRatios {
            baseline: 0,
            ratios: Vec::new(),
        });
        finalize(
            &prober,
            &ratios_for_space,
            target.input_shape(),
            cfg.classes,
            &cfg.codec,
            cfg.first_layer_max_sparsity,
            cfg.max_k,
        )
        .ok()
    };
    Ok(AttackOutcome {
        prober,
        ratios,
        space,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_accel::{AccelConfig, Device};
    use hd_dnn::graph::{NetworkBuilder, Params};

    fn victim() -> Device {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 16, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 4);
        let net = b.build();
        let mut params = Params::init(&net, 5);
        // Moderate pruning: the paper-scale profile (99.8% on the largest
        // layer) is calibrated for 512-channel layers; at 8–16 channels it
        // would leave almost no weights and no observable boundary effect.
        let profile = hd_dnn::prune::SparsityProfile {
            targets: net
                .weighted_nodes()
                .iter()
                .enumerate()
                .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
                .collect(),
        };
        hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 6);
        Device::new(net, params, AccelConfig::eyeriss_v2())
    }

    fn cfg() -> AttackConfig {
        AttackConfig {
            prober: ProberConfig {
                shifts: 12,
                max_probes: 8,
                stable_probes: 2,
                kernels: vec![1, 3, 5],
                strides: vec![1, 2],
                pools: vec![2, 3],
                seed: 77,
                parallelism: None,
            },
            classes: 4,
            max_k: 256,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_attack_recovers_victim() {
        let dev = victim();
        let out = run(&dev, &cfg()).unwrap();

        // Geometry.
        use crate::prober::LayerKind;
        assert_eq!(
            out.prober.layers[0].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(out.prober.layers[1].kind, LayerKind::Pool { factor: 2 });
        assert_eq!(
            out.prober.layers[2].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(out.prober.layers[3].kind, LayerKind::GlobalPool);
        assert_eq!(out.prober.layers[4].kind, LayerKind::Dense);

        // Channel ratio conv2/conv1 = 16/8 = 2.
        let ratios = out.ratios.as_ref().unwrap();
        let r = ratios.ratios[1].1;
        assert!((r - 2.0).abs() < 0.25, "ratio {r}");

        // The true k1 = 8 is inside the finalized range.
        let space = out.space.as_ref().unwrap();
        assert!(
            space.k1_candidates.contains(&8),
            "range {:?}",
            space.k1_candidates
        );
        // The space is small (tens, not thousands).
        assert!(space.count() < 50, "count {}", space.count());

        // Candidates rebuild into runnable networks.
        let arch = space.candidate(8);
        let net = space.build_network(&arch);
        let params = hd_dnn::graph::Params::init(&net, 1);
        let fwd = net.forward(&params, &hd_tensor::Tensor3::full(3, 16, 16, 0.5));
        assert_eq!(fwd.logits().len(), 4);

        // Report covers all stages.
        let rep = out.report();
        assert!(rep.contains("prober"));
        assert!(rep.contains("timing channel"));
        assert!(rep.contains("solution space"));
    }

    #[test]
    fn attack_builder_validates_nested_and_own_fields() {
        use crate::prober::ConfigError;
        let cfg = AttackConfig::builder()
            .classes(4)
            .max_k(256)
            .first_layer_max_sparsity(0.5)
            .build()
            .unwrap();
        assert_eq!(cfg.classes, 4);
        assert_eq!(cfg.max_k, 256);
        assert_eq!(
            AttackConfig::builder().classes(0).build(),
            Err(ConfigError::ZeroField { field: "classes" })
        );
        assert_eq!(
            AttackConfig::builder().max_k(0).build(),
            Err(ConfigError::ZeroField { field: "max_k" })
        );
        assert!(matches!(
            AttackConfig::builder()
                .first_layer_max_sparsity(1.5)
                .build(),
            Err(ConfigError::FractionOutOfRange { .. })
        ));
        // The nested prober config is re-validated at attack build time.
        assert_eq!(
            AttackConfig::builder()
                .prober(ProberConfig {
                    shifts: 0,
                    ..ProberConfig::default()
                })
                .build(),
            Err(ConfigError::ZeroField { field: "shifts" })
        );
    }

    #[test]
    fn sampled_candidates_are_distinct_and_buildable() {
        let dev = victim();
        let out = run(&dev, &cfg()).unwrap();
        let space = out.space.as_ref().unwrap();
        let samples = space.sample(4, 9);
        assert!(samples.len() <= 4 && !samples.is_empty());
        let mut k1s: Vec<usize> = samples.iter().map(|a| a.k1).collect();
        k1s.dedup();
        assert_eq!(k1s.len(), samples.len(), "duplicate k1 sampled");
        for arch in &samples {
            let net = space.build_network(arch);
            assert!(net.len() > 3);
        }
    }

    /// The restricted channels degrade the attack, they don't error it:
    /// trace-only loses the ratios, timing-only loses nearly everything,
    /// GEMM dims recover the channel counts exactly.
    #[test]
    fn restricted_channels_degrade_gracefully() {
        use crate::channel::{GemmDims, TimingOnly, TraceOnly};
        let dev = victim();

        let trace = run(&TraceOnly::new(&dev), &cfg()).unwrap();
        assert!(trace.ratios.is_none(), "no timing, no ratios");
        // Geometry still comes through the volume channel alone.
        use crate::prober::LayerKind;
        assert_eq!(
            trace.prober.layers[0].kind,
            LayerKind::Conv {
                kernel: 3,
                stride: 1
            }
        );
        assert_eq!(trace.prober.layers[1].kind, LayerKind::Pool { factor: 2 });
        let space = trace.space.as_ref().unwrap();
        assert!(space.k1_candidates.contains(&8));

        let timing = run(&TimingOnly::new(&dev), &cfg()).unwrap();
        // Without sizes the trunk/head split is unobservable; the report
        // still renders (no panics on missing stages).
        assert!(timing.report().contains("prober"));

        let gemm = run(&GemmDims::new(&dev), &cfg()).unwrap();
        assert!(gemm
            .prober
            .layers
            .iter()
            .all(|l| matches!(l.kind, LayerKind::Conv { .. })));
        assert!(gemm.ratios.is_some(), "GEMM m-dims give exact ratios");
    }
}
