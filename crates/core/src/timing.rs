//! The psum-encoding timing side channel (paper §7).
//!
//! With the encoder GLB-bound, each layer's observable write window is
//! proportional to its dense psum footprint `P·Q·K`. The prober already
//! recovered `P, Q` for every conv layer, so window ratios reveal the
//! channel-count ratios `K_l / K_1` — the one quantity the boundary effect
//! cannot see.

use crate::prober::{LayerKind, ProberResult};

/// Per-layer channel-ratio estimates extracted from encode windows.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelRatios {
    /// Index (within `ProberResult::layers`) of the layer every ratio is
    /// relative to: the first conv layer with a *usable* (multi-burst)
    /// encode window. Usually the first conv, but a tiny first conv whose
    /// output fits in a single burst has no window to time, and the
    /// baseline then falls on a later layer — callers must scale from
    /// *this* layer's channel count, not blindly from `K_1`.
    pub baseline: usize,
    /// `(layer index within ProberResult::layers, ratio K_l / K_baseline)`
    /// for every conv layer with a usable window, in execution order. The
    /// entry for `baseline` is `1.0` by definition.
    pub ratios: Vec<(usize, f64)>,
}

impl ChannelRatios {
    /// Channel counts implied by a candidate count `k_base` for the
    /// [`ChannelRatios::baseline`] layer (*not* necessarily the first
    /// conv layer — check `baseline`).
    pub fn channels_for(&self, k_base: usize) -> Vec<(usize, usize)> {
        self.ratios
            .iter()
            .map(|&(idx, r)| (idx, ((k_base as f64) * r).round().max(1.0) as usize))
            .collect()
    }
}

/// Errors extracting the timing channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingError {
    /// No conv layer produced a usable (multi-burst) encode window.
    NoConvLayers,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::NoConvLayers => write!(f, "no conv layers with usable encode windows"),
        }
    }
}

impl std::error::Error for TimingError {}

/// Extracts channel ratios from the encode windows the prober observed.
///
/// # Errors
///
/// Returns [`TimingError`] when no conv layer exists or a window is
/// unusable.
pub fn channel_ratios(prober: &ProberResult) -> Result<ChannelRatios, TimingError> {
    let mut ratios = Vec::new();
    let mut first: Option<(usize, f64)> = None;
    for (i, layer) in prober.layers.iter().enumerate() {
        let LayerKind::Conv { .. } = layer.kind else {
            continue;
        };
        let Some((p, q)) = layer.out_hw else { continue };
        if layer.encode_window_ps == 0 {
            // Output fits in a single burst; nothing to time. The layer's
            // channel count falls back to the candidate scale later.
            continue;
        }
        // GLB-bound: window ∝ P·Q·K  =>  K ∝ window / (P·Q).
        let per_pixel = layer.encode_window_ps as f64 / (p * q) as f64;
        let (_, base) = *first.get_or_insert((i, per_pixel));
        ratios.push((i, per_pixel / base));
    }
    if let Some((baseline, _)) = first {
        return Ok(ChannelRatios { baseline, ratios });
    }

    // GEMM-dimension fallback (never taken on the full channel, whose
    // layers carry windows but no GEMM evidence): `m` *is* the live
    // channel count, so the "ratios" are exact rather than timing-derived.
    let mut gemm_ratios = Vec::new();
    let mut gemm_first: Option<(usize, f64)> = None;
    for (i, layer) in prober.layers.iter().enumerate() {
        if !matches!(layer.kind, LayerKind::Conv { .. }) {
            continue;
        }
        let Some(g) = layer.gemm else { continue };
        if g.m == 0 {
            continue;
        }
        let m = g.m as f64;
        let (_, base) = *gemm_first.get_or_insert((i, m));
        gemm_ratios.push((i, m / base));
    }
    let Some((baseline, _)) = gemm_first else {
        return Err(TimingError::NoConvLayers);
    };
    Ok(ChannelRatios {
        baseline,
        ratios: gemm_ratios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::prober::{probe, ProberConfig, RecoveredLayer};
    use hd_accel::{AccelConfig, Device};
    use hd_dnn::graph::{NetworkBuilder, Params};

    fn cfg() -> ProberConfig {
        ProberConfig {
            shifts: 12,
            max_probes: 6,
            stable_probes: 2,
            kernels: vec![1, 3, 5],
            strides: vec![1, 2],
            pools: vec![2, 3],
            seed: 21,
            parallelism: None,
        }
    }

    #[test]
    fn ratios_track_true_channel_counts() {
        // conv(8) -> conv(24): expected ratio 3.0.
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        b.conv(x, 24, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 3);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let res = probe(&dev, &cfg()).unwrap();
        let ratios = channel_ratios(&res).unwrap();
        assert_eq!(ratios.ratios.len(), 2);
        assert!((ratios.ratios[0].1 - 1.0).abs() < 1e-9);
        let r = ratios.ratios[1].1;
        assert!((r - 3.0).abs() < 0.15, "ratio {r}");
        // Implied channel counts from the true k1.
        let ks = ratios.channels_for(8);
        assert_eq!(ks[0].1, 8);
        assert!((ks[1].1 as i64 - 24).abs() <= 1, "k2 {}", ks[1].1);
    }

    #[test]
    fn ratio_correct_across_stride_change() {
        // conv(8)/1 at 16x16 -> conv(16)/2 at 8x8: per-pixel window must
        // normalize away the spatial difference.
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        b.conv(x, 16, 3, 2);
        let net = b.build();
        let params = Params::init(&net, 4);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let res = probe(&dev, &cfg()).unwrap();
        let ratios = channel_ratios(&res).unwrap();
        let r = ratios.ratios[1].1;
        assert!((r - 2.0).abs() < 0.2, "ratio {r}");
    }

    /// Builds a synthetic recovered conv layer with a chosen encode window.
    fn conv_layer(index: usize, out_hw: (usize, usize), encode_window_ps: u64) -> RecoveredLayer {
        RecoveredLayer {
            index,
            inputs: vec![index],
            kind: LayerKind::Conv {
                kernel: 3,
                stride: 1,
            },
            alternatives: vec![LayerKind::Conv {
                kernel: 3,
                stride: 1,
            }],
            out_hw: Some(out_hw),
            pattern: Pattern::of::<u64>(&[]),
            weight_bytes: 64,
            output_bytes: 64,
            encode_window_ps,
            gemm: None,
        }
    }

    #[test]
    fn tiny_first_conv_rebaselines_explicitly() {
        // Regression: a tiny first conv whose output fits in a single burst
        // (encode_window_ps == 0) cannot be timed; the baseline must move
        // to the next usable conv layer and be *reported*, so callers scale
        // from that layer's channel count instead of silently treating the
        // first ratio entry as the first conv.
        let res = ProberResult {
            layers: vec![
                conv_layer(0, (4, 4), 0),      // sub-burst: untimeable
                conv_layer(1, (4, 4), 16_000), // baseline (K = 16, say)
                conv_layer(2, (4, 4), 32_000), // 2x the baseline count
            ],
            probes_used: 1,
            runs_used: 12,
            structure: None,
        };
        let ratios = channel_ratios(&res).unwrap();
        assert_eq!(ratios.baseline, 1, "baseline must skip the sub-burst conv");
        assert_eq!(
            ratios.ratios.len(),
            2,
            "untimeable layer contributes no ratio"
        );
        assert_eq!(ratios.ratios[0], (1, 1.0));
        assert!((ratios.ratios[1].1 - 2.0).abs() < 1e-9);
        // channels_for takes the count of the *baseline* layer: scaling
        // from K_baseline = 16 puts 32 channels on layer 2. The old API
        // would have been fed k1 (the first conv's count) here.
        let ks = ratios.channels_for(16);
        assert_eq!(ks, vec![(1, 16), (2, 32)]);
    }

    #[test]
    fn baseline_is_first_conv_when_timeable() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        b.conv(x, 24, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 3);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let res = probe(&dev, &cfg()).unwrap();
        let ratios = channel_ratios(&res).unwrap();
        assert_eq!(ratios.baseline, 0);
    }

    #[test]
    fn no_conv_layers_is_error() {
        let empty = ProberResult {
            layers: vec![],
            probes_used: 0,
            runs_used: 0,
            structure: None,
        };
        assert_eq!(channel_ratios(&empty), Err(TimingError::NoConvLayers));
    }
}
