//! The generalized input pattern `A(m, n)` (paper §6.1) and its decoding.
//!
//! After passing through `l` layers, a probe family's rows all share the
//! shape the paper formalizes as `A(m, n)`:
//!
//! ```text
//! x_t = s_1 … s_m,  b … b,  f_1 … f_n,  b, b, …
//!                   └ t ┘
//! ```
//!
//! `m` edge constants (the bias/boundary interaction, `ω`-like terms), a
//! sliding feature of length `n` (the accumulated impulse response,
//! `[ε δ γ β α]`-like), and a constant background `b` (the bias response,
//! `ζ`). The prober proper tracks full symbolic rows — strictly more
//! information — but this module exposes the paper's abstraction for
//! analysis and testing: generate `A(m, n)` families and decode `(m, n)`
//! back out of symbolic rows ("DecodeOutPattern" in Algorithm 1).

use crate::symbolic::{Sym, VarSource};

/// Parameters of a generalized pattern family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Anm {
    /// Number of fixed edge constants.
    pub m: usize,
    /// Feature length.
    pub n: usize,
}

/// Generates the symbolic row family `A(m, n)` over `shifts` shifts of a
/// width-`w` row: `m` fixed edge constants, a length-`n` feature sliding
/// right by one per shift, background elsewhere.
///
/// # Panics
///
/// Panics if the widest placement `m + shifts - 1 + n` exceeds `w`.
pub fn generate(anm: Anm, w: usize, shifts: usize, vars: &mut VarSource) -> Vec<Vec<Sym>> {
    assert!(
        anm.m + shifts.saturating_sub(1) + anm.n <= w,
        "A({}, {}) with {shifts} shifts does not fit width {w}",
        anm.m,
        anm.n
    );
    let edge: Vec<Sym> = (0..anm.m).map(|_| vars.fresh()).collect();
    let feature: Vec<Sym> = (0..anm.n).map(|_| vars.fresh()).collect();
    let background = vars.fresh();
    (0..shifts)
        .map(|t| {
            let mut row = vec![background; w];
            row[..anm.m].copy_from_slice(&edge);
            for (j, &f) in feature.iter().enumerate() {
                row[anm.m + t + j] = f;
            }
            row
        })
        .collect()
}

/// Decodes `(m, n)` from a family of symbolic rows, assuming they follow
/// the `A(m, n)` structure for *consecutive unit shifts*.
///
/// `m` is the longest common prefix shared by every row; `n` is the span
/// of positions (after the prefix) where the first row differs from the
/// last row's background region. Returns `None` when fewer than two rows
/// are given or the rows have inconsistent lengths.
pub fn decode(rows: &[Vec<Sym>]) -> Option<Anm> {
    if rows.len() < 2 {
        return None;
    }
    let w = rows[0].len();
    if rows.iter().any(|r| r.len() != w) {
        return None;
    }
    // m: positions where all rows agree, from the left.
    let mut m = 0;
    'outer: for i in 0..w {
        for r in &rows[1..] {
            if r[i] != rows[0][i] {
                break 'outer;
            }
        }
        m += 1;
    }
    // Background: the most frequent value in the first row. The extreme
    // columns can carry right-edge constants (the mirror of the `m`
    // prefix), so the mode is the robust estimate of `b`. BTreeMap keeps
    // the tie-break (equal counts) deterministic across processes.
    let mut counts: std::collections::BTreeMap<Sym, usize> = std::collections::BTreeMap::new();
    for &v in &rows[0] {
        *counts.entry(v).or_insert(0) += 1;
    }
    let background = *counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(v, _)| v)
        .expect("non-empty row"); // hd-lint: allow(no-panic) -- rows[0] is non-empty (w > 0 checked by caller)
                                  // Agreed suffix: positions all rows share from the right (untouched
                                  // background plus right-edge constants); the sliding feature never
                                  // lives there for the shifts examined.
    let mut suffix = 0;
    'suf: for i in (m..w).rev() {
        for r in &rows[1..] {
            if r[i] != rows[0][i] {
                break 'suf;
            }
        }
        suffix += 1;
    }
    // Feature span in the first row: first/last non-background cell in
    // the sliding region.
    let mut first = None;
    let mut last = None;
    #[allow(clippy::needless_range_loop)] // index-parallel numeric kernel
    for i in m..w - suffix {
        if rows[0][i] != background {
            if first.is_none() {
                first = Some(i);
            }
            last = Some(i);
        }
    }
    let n = match (first, last) {
        (Some(f), Some(l)) => l - f + 1,
        _ => 0,
    };
    Some(Anm { m, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{ConvHypothesis, SymConvLayer};

    #[test]
    fn generate_then_decode_roundtrips() {
        for (m, n) in [(0usize, 1usize), (1, 3), (2, 5), (0, 4)] {
            let mut vars = VarSource::new(m as u64 * 31 + n as u64);
            let rows = generate(Anm { m, n }, 24, 6, &mut vars);
            let decoded = decode(&rows).unwrap();
            assert_eq!(decoded, Anm { m, n }, "A({m},{n})");
        }
    }

    #[test]
    fn impulse_family_is_a01() {
        let mut vars = VarSource::new(3);
        let rows = crate::symbolic::impulse_rows(16, 5, &mut vars);
        // impulse_rows places the feature at position t with zero
        // background and no edge constants — A(0, 1) with b = 0.
        let decoded = decode(&rows).unwrap();
        assert_eq!(decoded, Anm { m: 0, n: 1 });
    }

    #[test]
    fn conv_grows_feature_and_edge_constants() {
        // Paper §5.3: after a 3-tap conv layer with bias, A(0, 1) becomes
        // A(m', n') with n' = n + kernel - 1 and at least one edge
        // constant from the bias response.
        let mut vars = VarSource::new(7);
        let rows = generate(Anm { m: 0, n: 1 }, 24, 6, &mut vars);
        let layer = SymConvLayer::new(
            ConvHypothesis {
                kernel: 3,
                stride: 1,
            },
            &mut vars,
        );
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| layer.apply(r)).collect();
        // Drop rows whose filter response is truncated at the edge (the
        // paper discards these before analyzing the next layer).
        let interior = &out[2..];
        let decoded = decode(interior).unwrap();
        assert_eq!(decoded.n, 3, "feature grows to n + k - 1");
        assert!(decoded.m >= 1, "bias edge response creates edge constants");
    }

    #[test]
    fn decode_rejects_degenerate_input() {
        assert!(decode(&[]).is_none());
        let mut vars = VarSource::new(1);
        let one = generate(Anm { m: 0, n: 1 }, 8, 1, &mut vars);
        assert!(decode(&one).is_none());
        // Inconsistent widths.
        let mut rows = generate(Anm { m: 0, n: 1 }, 8, 2, &mut vars);
        rows[1].pop();
        assert!(decode(&rows).is_none());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn generate_checks_width() {
        let mut vars = VarSource::new(1);
        let _ = generate(Anm { m: 4, n: 8 }, 12, 4, &mut vars);
    }
}
