//! # HuffDuff core — the attack itself
//!
//! Reproduction of the HuffDuff attack (ASPLOS 2023): reverse-engineering a
//! pruned CNN's architecture from a sparse accelerator's DRAM-bus side
//! channels.
//!
//! Pipeline (mirroring the paper):
//!
//! 1. [`probe`] (module [`probe`]) crafts stripe images that slide a
//!    feature across the input;
//! 2. [`prober`] measures per-layer output transfer volumes, forms
//!    [`pattern::Pattern`]s over probe shifts, and matches them against the
//!    [`symbolic`] engine's predictions to recover kernel sizes, strides,
//!    pooling factors, and the dataflow graph;
//! 3. [`timing`] reads the psum-encoding window of each layer (GLB-bound on
//!    Eyeriss-v2-class devices) to recover channel-count ratios;
//! 4. [`solution`] bounds the first layer's channel count from its
//!    compressed weight footprint and the empirical ≤60% first-layer
//!    sparsity, producing fewer than ~100 concrete candidates that
//!    [`solution::SolutionSpace::build_network`] turns into trainable
//!    networks;
//! 5. [`reversecnn`] implements the dense-case baseline and the naive
//!    sparse bound of Table 1, and [`boundary_obs`] the §5.2 Monte-Carlo.
//!
//! [`attack::run`] chains stages 1–4 end to end. [`eval`] scores results
//! against ground truth (evaluation harnesses only).
//!
//! # Examples
//!
//! ```no_run
//! use hd_accel::{AccelConfig, Device};
//! use hd_dnn::{graph::Params, zoo};
//! use huffduff_core::attack::{run, AttackConfig};
//!
//! let net = zoo::resnet18(10);
//! let mut params = Params::init(&net, 1);
//! let profile = hd_dnn::prune::paper_profile(&net);
//! hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 2);
//! let device = Device::new(net, params, AccelConfig::eyeriss_v2());
//!
//! let outcome = run(&device, &AttackConfig::default()).unwrap();
//! println!("{}", outcome.report());
//! let space = outcome.space.as_ref().unwrap();
//! for candidate in space.sample(8, 42) {
//!     let _net = space.build_network(&candidate);
//!     // retrain, evaluate, mount follow-up attacks…
//! }
//! ```
//!
//! Everything the attack learns flows through an observation channel
//! ([`channel::ObservationModel`]): the full trace+timing channel of the
//! paper, or restricted ones (trace-only, timing-only, GEMM dimensions)
//! for comparing attacker capability against defences.

pub mod anm;
pub mod attack;
pub mod boundary_obs;
pub mod channel;
pub mod eval;
pub mod pattern;
pub mod probe;
pub mod prober;
pub mod reversecnn;
pub mod solution;
pub mod symbolic;
pub mod timing;

pub use attack::{run, AttackConfig, AttackConfigBuilder, AttackError, AttackOutcome};
pub use channel::{
    ChannelKind, FullChannel, GemmDims, LayerEvidence, Observation, ObservationModel, ObserveError,
    TimingOnly, TraceOnly,
};
pub use pattern::Pattern;
pub use prober::{
    probe as run_prober, ConfigError, LayerKind, ProberConfig, ProberConfigBuilder, ProberResult,
};
pub use solution::{CandidateArch, CodecModel, SolutionSpace};
pub use timing::ChannelRatios;
