//! Solution-space finalization and candidate reconstruction (paper §8.2).
//!
//! The prober pins down every spatial hyperparameter; the timing channel
//! pins down channel-count *ratios*. The remaining freedom is the absolute
//! scale — the first layer's `K_1`. The paper bounds it through the
//! empirical observation that first layers are hard to prune (sparsity
//! rarely beyond 60%), which combined with the observed compressed weight
//! footprint yields a finite `K_1` range; each value in the range is one
//! candidate architecture.

use crate::prober::{LayerKind, ProberResult, RecoveredLayer};
use crate::timing::ChannelRatios;
use hd_dnn::graph::{Network, NetworkBuilder, NodeId};
use hd_tensor::Shape3;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Attacker-side assumptions about the victim device's transfer format
/// (available from the accelerator's public datasheet).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodecModel {
    /// Weight payload bits per element.
    pub weight_bits: u32,
    /// Occupancy-bitmap bits per element (1 for the bitmap codec).
    pub bitmap_bits_per_elem: f64,
    /// Dense sideband bytes per output channel (bias + batch-norm params).
    pub sideband_bytes_per_channel: u64,
}

impl Default for CodecModel {
    fn default() -> Self {
        CodecModel {
            weight_bits: 8,
            bitmap_bits_per_elem: 1.0,
            sideband_bytes_per_channel: 8,
        }
    }
}

/// Derives the feasible first-layer output-channel range from the observed
/// compressed weight footprint.
///
/// For a candidate `K`, the dense first-layer weight count is
/// `r^2 * C * K`; the observed bytes decompose into bitmap + payload +
/// sideband, so the implied non-zero count is checked against the
/// `[1 - max_sparsity, 1]` density window.
pub fn first_layer_k_range(
    weight_bytes: u64,
    kernel: usize,
    in_channels: usize,
    codec: &CodecModel,
    max_sparsity: f64,
    max_k: usize,
) -> Vec<usize> {
    let mut feasible = Vec::new();
    let per_k_dense = (kernel * kernel * in_channels) as f64;
    for k in 1..=max_k {
        let total = per_k_dense * k as f64;
        let sideband = codec.sideband_bytes_per_channel * k as u64;
        if weight_bytes <= sideband {
            continue;
        }
        let body_bits = (weight_bytes - sideband) as f64 * 8.0;
        let payload_bits = body_bits - total * codec.bitmap_bits_per_elem;
        if payload_bits < 0.0 {
            continue;
        }
        let nnz = payload_bits / codec.weight_bits as f64;
        let density = nnz / total;
        // Allow one byte of rounding slack at the density boundaries.
        let slack = 8.0 / (codec.weight_bits as f64 * total);
        if density >= (1.0 - max_sparsity) - slack && density <= 1.0 + slack {
            feasible.push(k);
        }
    }
    feasible
}

/// A sampled candidate architecture: the scale `k1` plus the channel count
/// assigned to each recovered layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateArch {
    /// First conv layer output channels.
    pub k1: usize,
    /// `(layer index, channels)` for conv layers; `(layer index,
    /// out_features)` for interior dense layers.
    pub channels: Vec<(usize, usize)>,
}

/// The finalized solution space.
///
/// `PartialEq` compares every recovered field bit-for-bit; the telemetry
/// invariance test relies on it to assert attack outcomes are unaffected by
/// observation.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionSpace {
    /// Feasible first-layer channel counts.
    pub k1_candidates: Vec<usize>,
    /// Timing-channel ratios.
    pub ratios: ChannelRatios,
    /// Recovered layers (geometry).
    pub layers: Vec<RecoveredLayer>,
    /// Victim input shape.
    pub input_shape: Shape3,
    /// Number of classes (observable from the device's output API).
    pub classes: usize,
}

/// Errors finalizing the space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolutionError {
    /// No conv layer was recovered.
    NoConvLayers,
    /// The observed first-layer footprint admits no feasible channel count.
    EmptyRange,
}

impl fmt::Display for SolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolutionError::NoConvLayers => write!(f, "no conv layers recovered"),
            SolutionError::EmptyRange => write!(f, "no feasible first-layer channel count"),
        }
    }
}

impl std::error::Error for SolutionError {}

/// Builds the solution space from prober + timing outputs.
///
/// # Errors
///
/// Returns [`SolutionError`] when the range cannot be established.
pub fn finalize(
    prober: &ProberResult,
    ratios: &ChannelRatios,
    input_shape: Shape3,
    classes: usize,
    codec: &CodecModel,
    first_layer_max_sparsity: f64,
    max_k: usize,
) -> Result<SolutionSpace, SolutionError> {
    let first_conv = prober
        .layers
        .iter()
        .find(|l| matches!(l.kind, LayerKind::Conv { .. }))
        .ok_or(SolutionError::NoConvLayers)?;
    let LayerKind::Conv { kernel, .. } = first_conv.kind else {
        unreachable!()
    };
    // The GEMM channel reads the live first-layer channel count directly
    // off the call's `m` dimension — no footprint bound needed. (Under a
    // schedule-padding defence `m` is rounded up, so the single candidate
    // is confidently wrong; the channel × defence matrix records that.)
    if let Some(g) = first_conv.gemm {
        if g.m == 0 || g.m > max_k {
            return Err(SolutionError::EmptyRange);
        }
        return Ok(SolutionSpace {
            k1_candidates: vec![g.m],
            ratios: ratios.clone(),
            layers: prober.layers.to_vec(),
            input_shape,
            classes,
        });
    }
    let k1_candidates = first_layer_k_range(
        first_conv.weight_bytes,
        kernel,
        input_shape.c,
        codec,
        first_layer_max_sparsity,
        max_k,
    );
    if k1_candidates.is_empty() {
        return Err(SolutionError::EmptyRange);
    }
    Ok(SolutionSpace {
        k1_candidates,
        ratios: ratios.clone(),
        layers: prober.layers.to_vec(),
        input_shape,
        classes,
    })
}

impl SolutionSpace {
    /// Number of candidate architectures.
    pub fn count(&self) -> usize {
        self.k1_candidates.len()
    }

    /// The candidate for a specific first-layer channel count.
    ///
    /// Timing ratios scale from [`ChannelRatios::baseline`]. When the
    /// first conv's window is usable the baseline *is* the first conv, so
    /// the baseline count equals `k1` exactly. A sub-burst first conv
    /// (baseline on a later layer) leaves no measured link between `k1`
    /// and the baseline count; the space then assumes the victim keeps
    /// its early width (`k_base = k1`) — explicit now, where the old API
    /// made the same substitution silently.
    pub fn candidate(&self, k1: usize) -> CandidateArch {
        let k_base = k1;
        let mut channels = self.ratios.channels_for(k_base);
        // Interior dense layers: out_features from the same timing unit.
        {
            let base = &self.layers[self.ratios.baseline];
            if let (Some((p, q)), w1) = (base.out_hw, base.encode_window_ps) {
                if w1 > 0 {
                    let unit = w1 as f64 / (p * q * k_base.max(1)) as f64;
                    let n = self.layers.len();
                    for (i, l) in self.layers.iter().enumerate() {
                        if matches!(l.kind, LayerKind::Dense) && i + 1 < n {
                            // Sub-burst outputs have no measurable window;
                            // fall back to a head-sized default so the
                            // candidate keeps a trainable bottleneck.
                            let feats = if l.encode_window_ps > 0 {
                                (l.encode_window_ps as f64 / unit).round().max(1.0) as usize
                            } else {
                                4 * self.classes
                            };
                            channels.push((i, feats.max(self.classes)));
                        }
                    }
                }
            }
        }
        CandidateArch { k1, channels }
    }

    /// Channel count of a tensor under a candidate assignment (input
    /// channels for tensor 0; producer's k for conv/dense tensors;
    /// passthrough for pool/add/global-pool).
    fn tensor_channels(&self, t: usize, k_of: &[Option<usize>]) -> usize {
        if t == 0 {
            return self.input_shape.c;
        }
        let l = &self.layers[t - 1];
        match l.kind {
            LayerKind::Conv { .. } | LayerKind::Dense => k_of[t - 1].unwrap_or(self.input_shape.c),
            LayerKind::Pool { .. } | LayerKind::GlobalPool | LayerKind::Add => {
                self.tensor_channels(l.inputs[0], k_of)
            }
        }
    }

    /// Drops `k1` candidates whose implied per-layer weight densities are
    /// impossible: every conv layer's observed compressed weight bytes
    /// must fit between the bitmap floor (`r^2*c*k/8` plus sideband — no
    /// tensor compresses below its occupancy metadata) and the fully
    /// dense ceiling. A consistency filter the attacker gets for free,
    /// tightening the finalized space beyond the first-layer bound.
    pub fn filter_by_weight_footprints(&self, codec: &CodecModel) -> Vec<usize> {
        self.k1_candidates
            .iter()
            .copied()
            .filter(|&k1| self.candidate_footprints_feasible(k1, codec))
            .collect()
    }

    fn candidate_footprints_feasible(&self, k1: usize, codec: &CodecModel) -> bool {
        let arch = self.candidate(k1);
        let mut k_of: Vec<Option<usize>> = vec![None; self.layers.len()];
        for &(idx, k) in &arch.channels {
            k_of[idx] = Some(k);
        }
        for (i, l) in self.layers.iter().enumerate() {
            let LayerKind::Conv { kernel, .. } = l.kind else {
                continue;
            };
            // Only unambiguously-recovered layers constrain the space: a
            // prior-decided geometry (saturated deep layer) may carry the
            // wrong stride, which skews every downstream channel estimate
            // and would falsely reject the true candidate.
            if l.alternatives.len() != 1 || l.alternatives[0] != l.kind {
                continue;
            }
            let Some(k) = k_of[i] else { continue };
            // Channels that hide sizes record a zero footprint — no
            // constraint to check.
            if l.weight_bytes == 0 {
                continue;
            }
            let c = self.tensor_channels(l.inputs[0], &k_of);
            let total = (kernel * kernel * c * k) as f64;
            let sideband = (codec.sideband_bytes_per_channel * k as u64) as f64;
            let floor = total * codec.bitmap_bits_per_elem / 8.0 + sideband;
            let ceiling =
                total * (codec.bitmap_bits_per_elem + codec.weight_bits as f64) / 8.0 + sideband;
            let obs = l.weight_bytes as f64;
            // One burst of slack absorbs byte rounding and ratio noise.
            if obs + 64.0 < floor || obs - 64.0 > ceiling {
                return false;
            }
        }
        true
    }

    /// Uniformly samples `n` distinct candidates (paper §8.3 samples 8).
    pub fn sample(&self, n: usize, seed: u64) -> Vec<CandidateArch> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ks = self.k1_candidates.clone();
        ks.shuffle(&mut rng);
        ks.truncate(n);
        ks.sort_unstable();
        ks.into_iter().map(|k| self.candidate(k)).collect()
    }

    /// Reconstructs a trainable [`Network`] from a candidate.
    ///
    /// Residual joins require equal channel counts on both inputs; timing
    /// noise can round them apart, so producers feeding the same join are
    /// harmonized to the main path's count first.
    pub fn build_network(&self, arch: &CandidateArch) -> Network {
        // channels per layer index (conv + interior dense).
        let mut k_of: Vec<Option<usize>> = vec![None; self.layers.len()];
        for &(idx, k) in &arch.channels {
            k_of[idx] = Some(k);
        }

        // Channel count of a tensor = producer conv's k, else passthrough.
        // Tensor t (> 0) is produced by layer t-1.
        fn tensor_channels(
            t: usize,
            layers: &[RecoveredLayer],
            k_of: &[Option<usize>],
            input_c: usize,
        ) -> usize {
            if t == 0 {
                return input_c;
            }
            let l = &layers[t - 1];
            match l.kind {
                LayerKind::Conv { .. } | LayerKind::Dense => k_of[t - 1].unwrap_or(input_c),
                LayerKind::Pool { .. } | LayerKind::GlobalPool | LayerKind::Add => {
                    tensor_channels(l.inputs[0], layers, k_of, input_c)
                }
            }
        }

        // Harmonize residual joins (main path wins).
        for l in &self.layers {
            if !matches!(l.kind, LayerKind::Add) || l.inputs.len() != 2 {
                continue;
            }
            let main = tensor_channels(l.inputs[0], &self.layers, &k_of, self.input_shape.c);
            // Find the nearest conv producer of the second input and pin it.
            let mut t = l.inputs[1];
            while t > 0 {
                let p = t - 1;
                if matches!(self.layers[p].kind, LayerKind::Conv { .. }) {
                    k_of[p] = Some(main);
                    break;
                }
                t = self.layers[p].inputs[0];
            }
        }

        // Build the graph.
        let mut b = NetworkBuilder::new(self.input_shape.c, self.input_shape.h, self.input_shape.w);
        let input = b.input();
        let mut node_of_tensor: Vec<Option<NodeId>> = vec![None; self.layers.len() + 1];
        node_of_tensor[0] = Some(input);
        let mut is_vector: Vec<bool> = vec![false; self.layers.len() + 1];
        let n = self.layers.len();
        for (i, l) in self.layers.iter().enumerate() {
            // hd-lint: allow(no-panic) -- layers are topologically ordered by construction, so inputs are already built
            let x = node_of_tensor[l.inputs[0]].expect("producer built");
            let out = match l.kind {
                LayerKind::Conv { kernel, stride } => {
                    let k = k_of[i].unwrap_or(self.input_shape.c);
                    b.conv(x, k, kernel, stride)
                }
                LayerKind::Pool { factor } => b.max_pool(x, factor),
                LayerKind::Add => {
                    // hd-lint: allow(no-panic) -- same topological-order invariant as the first input
                    let y = node_of_tensor[l.inputs[1]].expect("producer built");
                    b.add(x, y)
                }
                LayerKind::GlobalPool => {
                    is_vector[l.output_tensor()] = true;
                    b.global_avg_pool(x)
                }
                LayerKind::Dense => {
                    let x = if is_vector[l.inputs[0]] {
                        x
                    } else {
                        b.flatten(x)
                    };
                    is_vector[l.output_tensor()] = true;
                    if i + 1 == n {
                        b.linear(x, self.classes)
                    } else {
                        b.linear_opts(x, k_of[i].unwrap_or(self.classes), true)
                    }
                }
            };
            node_of_tensor[l.output_tensor()] = Some(out);
        }
        // Ensure the network ends in a classifier over `classes`.
        b.build()
    }

    /// Compact report.
    pub fn report(&self) -> String {
        let lo = self.k1_candidates.first().copied().unwrap_or(0);
        let hi = self.k1_candidates.last().copied().unwrap_or(0);
        format!(
            "solution space: {} candidates, k1 in [{lo}, {hi}], {} recovered layers",
            self.count(),
            self.layers.len()
        )
    }
}

impl RecoveredLayer {
    /// Tensor id this layer produces (hd-trace convention).
    pub fn output_tensor(&self) -> usize {
        self.index + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_range_brackets_truth() {
        // Simulate a first layer with K=64, r=3, C=3, 45% sparsity.
        let (k_true, r, c) = (64usize, 3usize, 3usize);
        let total = r * r * c * k_true;
        let nnz = (total as f64 * 0.55).round() as u64;
        let codec = CodecModel::default();
        let bytes = ((total as f64 + nnz as f64 * 8.0) / 8.0).ceil() as u64
            + codec.sideband_bytes_per_channel * k_true as u64;
        let range = first_layer_k_range(bytes, r, c, &codec, 0.6, 512);
        assert!(range.contains(&k_true), "range {range:?}");
        // Range endpoints: density window [0.4, 1.0] means
        // k in roughly [0.55*K, 0.55*K/0.4].
        let lo = *range.first().unwrap();
        let hi = *range.last().unwrap();
        assert!(
            lo >= (0.5 * k_true as f64) as usize && lo <= k_true,
            "lo {lo}"
        );
        assert!(hi >= k_true && hi <= 2 * k_true, "hi {hi}");
    }

    #[test]
    fn tighter_sparsity_bound_shrinks_range() {
        let (k_true, r, c) = (32usize, 3usize, 3usize);
        let total = r * r * c * k_true;
        let nnz = (total as f64 * 0.55).round() as u64;
        let codec = CodecModel::default();
        let bytes = ((total as f64 + nnz as f64 * 8.0) / 8.0).ceil() as u64
            + codec.sideband_bytes_per_channel * k_true as u64;
        let loose = first_layer_k_range(bytes, r, c, &codec, 0.6, 512).len();
        let tight = first_layer_k_range(bytes, r, c, &codec, 0.5, 512).len();
        assert!(tight < loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn empty_range_for_nonsense_footprint() {
        let range = first_layer_k_range(3, 7, 3, &CodecModel::default(), 0.6, 256);
        assert!(range.is_empty());
    }
}

#[cfg(test)]
mod footprint_tests {
    use super::*;
    use crate::attack::{run, AttackConfig};
    use crate::prober::ProberConfig;
    use hd_accel::{AccelConfig, Device};
    use hd_dnn::graph::{NetworkBuilder, Params};

    #[test]
    fn footprint_filter_keeps_truth_and_never_grows_the_space() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 16, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 10);
        let net = b.build();
        let mut params = Params::init(&net, 5);
        let profile = hd_dnn::prune::SparsityProfile {
            targets: net
                .weighted_nodes()
                .iter()
                .enumerate()
                .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
                .collect(),
        };
        hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 6);
        let device = Device::new(net, params, AccelConfig::eyeriss_v2());
        let cfg = AttackConfig {
            prober: ProberConfig {
                shifts: 12,
                max_probes: 8,
                stable_probes: 2,
                ..Default::default()
            },
            classes: 10,
            max_k: 256,
            ..Default::default()
        };
        let outcome = run(&device, &cfg).unwrap();
        let space = outcome.space.as_ref().unwrap();
        let filtered = space.filter_by_weight_footprints(&CodecModel::default());
        assert!(filtered.len() <= space.count());
        assert!(filtered.contains(&8), "true k1 must survive: {filtered:?}");
    }
}
