//! Observability patterns over probe shifts.
//!
//! Sliding a probe feature across the input produces a sequence of
//! responses, one per shift. Grouping shifts by *equal observables*
//! (equal transfer bytes on the measured side; equal output multisets on
//! the symbolic side) yields a [`Pattern`] like `ABCC…` (paper §5.4/§6.2).
//!
//! Errors are one-sided: positions the true geometry makes *equal* are
//! always measured equal, but truly *distinct* positions may collide
//! (unobservable boundary effect). Hence a measurement is always a
//! **coarsening** of the true pattern, and independent probes are combined
//! with [`Pattern::refine`] to approach the true pattern from below.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A partition of shift positions into equality classes, canonically
/// labelled by first occurrence (`0, 1, 2, …` rendered as `A, B, C, …`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Pattern {
    labels: Vec<u16>,
}

impl Pattern {
    /// Builds the pattern of a sequence of observables.
    ///
    /// # Examples
    ///
    /// ```
    /// use huffduff_core::pattern::Pattern;
    ///
    /// let p = Pattern::of(&[10u64, 20, 30, 30]);
    /// assert_eq!(p.to_string(), "ABCC");
    /// ```
    pub fn of<T: Eq + Hash>(items: &[T]) -> Pattern {
        let mut seen: HashMap<&T, u16> = HashMap::new();
        let mut labels = Vec::with_capacity(items.len());
        for item in items {
            let next = seen.len() as u16;
            let label = *seen.entry(item).or_insert(next);
            labels.push(label);
        }
        Pattern { labels }
    }

    /// Number of shift positions.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` for a zero-length pattern.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct classes.
    pub fn class_count(&self) -> usize {
        self.labels
            .iter()
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Canonical labels.
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// Whether `self` (a measurement) is a coarsening of `fine` (a
    /// hypothesis): every pair `fine` calls equal, `self` must also call
    /// equal. Patterns of different lengths are never comparable.
    ///
    /// This is the acceptance test for a geometry hypothesis: structural
    /// equality forces byte equality, so a measurement that *splits* a
    /// hypothesis class refutes the hypothesis.
    pub fn is_coarsening_of(&self, fine: &Pattern) -> bool {
        if self.len() != fine.len() {
            return false;
        }
        // fine label -> self label must be a function.
        let mut map: HashMap<u16, u16> = HashMap::new();
        for (&f, &s) in fine.labels.iter().zip(&self.labels) {
            match map.get(&f) {
                Some(&prev) if prev != s => return false,
                Some(_) => {}
                None => {
                    map.insert(f, s);
                }
            }
        }
        true
    }

    /// Combines two measurements of the same layer: positions are equal in
    /// the result only if equal in **both** (the finest common refinement —
    /// any probe that distinguishes two shifts proves them distinct).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn refine(&self, other: &Pattern) -> Pattern {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot refine patterns of different length"
        );
        let pairs: Vec<(u16, u16)> = self
            .labels
            .iter()
            .zip(&other.labels)
            .map(|(&a, &b)| (a, b))
            .collect();
        Pattern::of(&pairs)
    }

    /// Refines a whole collection of measurements into the finest pattern.
    ///
    /// Returns `None` for an empty collection.
    pub fn refine_all<'a, I: IntoIterator<Item = &'a Pattern>>(patterns: I) -> Option<Pattern> {
        let mut it = patterns.into_iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, p| acc.refine(p)))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &l in &self.labels {
            if l < 26 {
                write!(f, "{}", (b'A' + l as u8) as char)?;
            } else {
                write!(f, "({l})")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_labels() {
        assert_eq!(Pattern::of(&[5, 5, 5, 5]).to_string(), "AAAA");
        assert_eq!(Pattern::of(&[9, 1, 3, 3]).to_string(), "ABCC");
        assert_eq!(Pattern::of(&[1, 2, 1, 2]).to_string(), "ABAB");
    }

    #[test]
    fn class_count() {
        assert_eq!(Pattern::of(&[1, 2, 3, 3]).class_count(), 3);
        assert_eq!(Pattern::of::<u8>(&[]).class_count(), 0);
    }

    #[test]
    fn coarsening_direction() {
        let fine = Pattern::of(&[0, 1, 2, 2]); // ABCC (hypothesis)
        let coarse = Pattern::of(&[0, 1, 1, 1]); // ABBB (measurement w/ collision)
        let all_equal = Pattern::of(&[0, 0, 0, 0]); // AAAA
        assert!(coarse.is_coarsening_of(&fine));
        assert!(all_equal.is_coarsening_of(&fine));
        assert!(fine.is_coarsening_of(&fine));
        // A measurement that SPLITS a hypothesis class refutes it.
        assert!(!fine.is_coarsening_of(&all_equal));
        let split = Pattern::of(&[0, 1, 2, 3]); // ABCD
        assert!(!split.is_coarsening_of(&fine));
    }

    #[test]
    fn coarsening_requires_same_length() {
        let a = Pattern::of(&[0, 1]);
        let b = Pattern::of(&[0, 1, 2]);
        assert!(!a.is_coarsening_of(&b));
    }

    #[test]
    fn refine_recovers_true_pattern_from_partial_views() {
        // True pattern ABCC; two probes each obscure one distinction.
        let p1 = Pattern::of(&[0, 0, 1, 1]); // AABB (A~B collided)
        let p2 = Pattern::of(&[0, 1, 1, 1]); // ABBB (B~C collided)
        let refined = p1.refine(&p2);
        assert_eq!(refined.to_string(), "ABCC");
    }

    #[test]
    fn refine_is_idempotent_and_commutative() {
        let a = Pattern::of(&[0, 1, 0, 2]);
        let b = Pattern::of(&[0, 0, 1, 1]);
        assert_eq!(a.refine(&a), a);
        assert_eq!(a.refine(&b), b.refine(&a));
    }

    #[test]
    fn refine_all_over_many() {
        let ps = vec![
            Pattern::of(&[0, 0, 0, 0]),
            Pattern::of(&[0, 1, 1, 1]),
            Pattern::of(&[0, 0, 1, 1]),
        ];
        let r = Pattern::refine_all(&ps).unwrap();
        assert_eq!(r.to_string(), "ABCC");
        assert!(Pattern::refine_all(std::iter::empty()).is_none());
    }

    #[test]
    fn refined_is_coarsening_of_nothing_it_should_not_be() {
        // Refinement of measurements stays a coarsening of the truth.
        let truth = Pattern::of(&[0, 1, 2, 2, 2]);
        let m1 = Pattern::of(&[0, 1, 1, 1, 1]);
        let m2 = Pattern::of(&[0, 0, 1, 1, 1]);
        let refined = m1.refine(&m2);
        assert!(refined.is_coarsening_of(&truth));
    }

    #[test]
    #[should_panic(expected = "different length")]
    fn refine_length_mismatch_panics() {
        let _ = Pattern::of(&[0, 1]).refine(&Pattern::of(&[0, 1, 2]));
    }
}
