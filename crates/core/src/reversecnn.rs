//! The ReverseCNN baseline (paper §3) and its naive sparse extension (§4).
//!
//! ReverseCNN attacks a **dense** accelerator: every transfer volume equals
//! the tensor's element count, so the constraint equations (Eqs. 1–6) have
//! few integer solutions. Against a **sparse** accelerator the equalities
//! decay to inequalities (Eqs. 8–10) and the solution count explodes — the
//! motivation for HuffDuff (Table 1).

use hd_num::LogCount;
use hd_trace::TraceAnalysis;
use std::fmt;

/// Hyperparameter candidates considered for each layer.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Candidate kernel sizes (`r = s`).
    pub kernels: Vec<usize>,
    /// Candidate strides.
    pub strides: Vec<usize>,
    /// Candidate pooling factors.
    pub pools: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            kernels: vec![1, 3, 5, 7, 11],
            strides: vec![1, 2],
            pools: vec![2, 3, 4],
        }
    }
}

/// One per-layer solution of the dense constraint system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DenseLayerSolution {
    /// Kernel size (0 for a pool layer).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Pooling factor (1 = none).
    pub pool: usize,
    /// Output channels.
    pub k: usize,
}

/// Result of the dense ReverseCNN attack.
#[derive(Clone, Debug)]
pub struct DenseResult {
    /// Per-layer candidate solutions.
    pub per_layer: Vec<Vec<DenseLayerSolution>>,
    /// Total solution count (product over layers).
    pub total: LogCount,
}

impl DenseResult {
    /// Whether every layer has at least one solution.
    pub fn solved(&self) -> bool {
        self.per_layer.iter().all(|l| !l.is_empty())
    }
}

impl fmt::Display for DenseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dense solutions over {} layers",
            self.total,
            self.per_layer.len()
        )
    }
}

/// Attacker-side codec model for the dense device: transfers are raw
/// elements at `elem_bits`, plus the per-channel parameter sideband.
#[derive(Clone, Copy, Debug)]
pub struct DenseCodec {
    /// Activation/weight element width in bits.
    pub elem_bits: u32,
    /// Sideband bytes per output channel (bias + BN).
    pub sideband_bytes_per_channel: u64,
}

impl Default for DenseCodec {
    fn default() -> Self {
        DenseCodec {
            elem_bits: 8,
            sideband_bytes_per_channel: 8,
        }
    }
}

/// Runs the ReverseCNN constraint solver on the trace analysis of a
/// **dense** (non-compressing) device run.
///
/// Layer recursion follows Eq. 7: the input geometry of layer `l+1` is the
/// output geometry of layer `l`; the solver carries every surviving
/// `(x, y, c)` hypothesis forward.
pub fn reverse_cnn_dense(
    analysis: &TraceAnalysis,
    input: (usize, usize, usize),
    space: &SearchSpace,
    codec: &DenseCodec,
) -> DenseResult {
    let bytes_per_elem = codec.elem_bits as f64 / 8.0;
    // Geometry hypotheses (x, y, c) per *tensor*, following the recovered
    // dataflow graph (tensor 0 is the network input; tensor l+1 is written
    // by layer l).
    let mut tensor_geoms: Vec<Vec<(usize, usize, usize)>> =
        vec![Vec::new(); analysis.tensors.len()];
    tensor_geoms[0] = vec![input];
    let mut per_layer = Vec::new();
    let mut total = LogCount::one();

    for layer in &analysis.layers {
        let o_elems = (layer.output_bytes as f64 / bytes_per_elem).round() as usize;
        let mut solutions: Vec<DenseLayerSolution> = Vec::new();
        let mut out_geoms: Vec<(usize, usize, usize)> = Vec::new();
        let geoms = layer
            .inputs
            .first()
            .map(|&t| tensor_geoms[t].clone())
            .unwrap_or_default();

        for &(x, y, c) in &geoms {
            if layer.weight_bytes == 0 {
                // Pool-like layer: find factors with x/f * y/f * c == O.
                for &f in &space.pools {
                    if x / f == 0 || y / f == 0 {
                        continue;
                    }
                    if (x / f) * (y / f) * c == o_elems {
                        let sol = DenseLayerSolution {
                            kernel: 0,
                            stride: 1,
                            pool: f,
                            k: c,
                        };
                        if !solutions.contains(&sol) {
                            solutions.push(sol);
                        }
                        push_unique(&mut out_geoms, (x / f, y / f, c));
                    }
                }
                // Identity-size weightless layer (residual add): geometry
                // passes through unchanged.
                if o_elems == x * y * c {
                    let sol = DenseLayerSolution {
                        kernel: 0,
                        stride: 1,
                        pool: 1,
                        k: c,
                    };
                    if !solutions.contains(&sol) {
                        solutions.push(sol);
                    }
                    push_unique(&mut out_geoms, (x, y, c));
                }
                // Global pooling: output == c.
                if o_elems == c {
                    let sol = DenseLayerSolution {
                        kernel: 0,
                        stride: 1,
                        pool: x.max(1),
                        k: c,
                    };
                    if !solutions.contains(&sol) {
                        solutions.push(sol);
                    }
                    push_unique(&mut out_geoms, (1, 1, c));
                }
                continue;
            }

            // Weighted layer: conv hypotheses (Eqs. 2–5 with same padding),
            // plus a fully-connected fallback.
            for &r in &space.kernels {
                for &s in &space.strides {
                    let p = x.div_ceil(s);
                    let q = y.div_ceil(s);
                    if p == 0 || q == 0 || !o_elems.is_multiple_of(p * q) {
                        continue;
                    }
                    let k = o_elems / (p * q);
                    if k == 0 {
                        continue;
                    }
                    // Eq. 3 with the sideband: W = r*r*c*k*elem + sideband*k.
                    let expect_w = (r * r * c * k) as f64 * bytes_per_elem
                        + (codec.sideband_bytes_per_channel * k as u64) as f64;
                    if (expect_w - layer.weight_bytes as f64).abs() <= 8.0 {
                        let sol = DenseLayerSolution {
                            kernel: r,
                            stride: s,
                            pool: 1,
                            k,
                        };
                        if !solutions.contains(&sol) {
                            solutions.push(sol);
                        }
                        push_unique(&mut out_geoms, (p, q, k));
                    }
                }
            }
            // Fully connected: W = in*out*elem + bias bytes, with out = O.
            let expect_fc = (x * y * c * o_elems) as f64 * bytes_per_elem + o_elems as f64 * 4.0;
            if (expect_fc - layer.weight_bytes as f64).abs() <= 8.0 {
                let sol = DenseLayerSolution {
                    kernel: 0,
                    stride: 0,
                    pool: 1,
                    k: o_elems,
                };
                if !solutions.contains(&sol) {
                    solutions.push(sol);
                }
                push_unique(&mut out_geoms, (1, 1, o_elems));
            }
        }

        total.mul_count(solutions.len() as u64);
        per_layer.push(solutions);
        if out_geoms.is_empty() {
            // Dead end: carry the input geometries so later layers still
            // report something.
            out_geoms = geoms;
        }
        tensor_geoms[layer.output] = out_geoms;
    }

    DenseResult { per_layer, total }
}

fn push_unique(v: &mut Vec<(usize, usize, usize)>, g: (usize, usize, usize)) {
    if !v.contains(&g) {
        v.push(g);
    }
}

/// Naive sparse solution-space size (paper §4.2): per weighted layer, count
/// `(r, stride, k)` triples admitted by the inequality
/// `size(W) <= r²·c·k·(elem) <= size(W) / (1 - alpha)` with a global
/// sparsity cap `alpha` — the approach HuffDuff renders unnecessary.
///
/// `c` per layer is taken from the victim's nominal channel sequence
/// (a *lower bound* on the true space, which also has `c` unknown).
pub fn naive_sparse_count(
    weight_bytes: &[u64],
    in_channels: &[usize],
    space: &SearchSpace,
    alpha: f64,
    elem_bits: u32,
) -> LogCount {
    assert_eq!(
        weight_bytes.len(),
        in_channels.len(),
        "one channel count per layer required"
    );
    let bytes_per_elem = elem_bits as f64 / 8.0;
    let mut total = LogCount::one();
    for (&wb, &c) in weight_bytes.iter().zip(in_channels) {
        let nnz = (wb as f64 / bytes_per_elem).max(1.0);
        let mut layer_count: u64 = 0;
        for &r in &space.kernels {
            let denom = (r * r * c) as f64;
            let k_min = (nnz / denom).ceil().max(1.0) as u64;
            let k_max = (nnz / (denom * (1.0 - alpha))).floor() as u64;
            if k_max >= k_min {
                layer_count += (k_max - k_min + 1) * space.strides.len() as u64;
            }
        }
        total.mul_count(layer_count.max(1));
    }
    total
}

/// Extracts **exact** per-layer output-channel counts from a trace whose
/// device executes batch norm separately (paper §2, "Broader
/// application"): such devices write each convolution's *dense* partial
/// sums to DRAM, so the psum tensor's byte count equals
/// `P*Q*K * elem_bits / 8` exactly.
///
/// A psum tensor is recognized attacker-side by its signature: it is
/// written, then immediately read back *in full by the very next layer*
/// (the BN pass), and its size never varies across probe inputs (dense).
/// Returns `(psum-writing layer index, exact K)` for every layer whose
/// byte count divides evenly by the provided `P*Q`.
pub fn exact_channels_from_dense_psums(
    analyses: &[TraceAnalysis],
    out_hw: &[(usize, Option<(usize, usize)>)],
    elem_bits: u32,
) -> Vec<(usize, usize)> {
    let Some(first) = analyses.first() else {
        return Vec::new();
    };
    let mut exact = Vec::new();
    for &(layer_idx, hw) in out_hw {
        let Some((p, q)) = hw else { continue };
        let Some(layer) = first.layers.get(layer_idx) else {
            continue;
        };
        // Dense check: identical bytes in every probe run.
        let constant = analyses
            .iter()
            .all(|a| a.layers.get(layer_idx).map(|l| l.output_bytes) == Some(layer.output_bytes));
        if !constant {
            continue;
        }
        // Consumed-in-full check: the next layer reads exactly this tensor.
        let consumed_in_full = first
            .layers
            .get(layer_idx + 1)
            .map(|next| {
                next.inputs.contains(&layer.output) && next.input_bytes >= layer.output_bytes
            })
            .unwrap_or(false);
        if !consumed_in_full {
            continue;
        }
        let bits = layer.output_bytes * 8;
        let per_k = (p * q) as u64 * elem_bits as u64;
        if per_k == 0 || bits % per_k != 0 {
            continue;
        }
        let k = (bits / per_k) as usize;
        if k > 0 {
            exact.push((layer_idx, k));
        }
    }
    exact
}

/// GPU-hours to train-and-test every candidate, at the paper's effective
/// rate (16 GPU-hours for 8 dense candidates = 2 h per candidate).
pub fn gpu_hours(count: &LogCount) -> f64 {
    2.0 * 10f64.powf(count.log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_accel::{AccelConfig, Device};
    use hd_dnn::graph::{NetworkBuilder, Params};
    use hd_tensor::{CompressionScheme, Tensor3};

    fn dense_device(net: hd_dnn::graph::Network, seed: u64) -> Device {
        let params = Params::init(&net, seed);
        let cfg = AccelConfig::eyeriss_v2()
            .with_schemes(CompressionScheme::Dense, CompressionScheme::Dense);
        Device::new(net, params, cfg)
    }

    #[test]
    fn dense_chain_is_solved_with_few_candidates() {
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        b.conv(x, 16, 5, 1);
        let dev = dense_device(b.build(), 3);
        let trace = dev.run(&Tensor3::full(3, 16, 16, 0.5));
        let analysis = hd_trace::analyze(&trace).unwrap();
        let res = reverse_cnn_dense(
            &analysis,
            (16, 16, 3),
            &SearchSpace::default(),
            &DenseCodec::default(),
        );
        assert!(res.solved(), "{res}");
        // Correct geometry is among the candidates for each layer.
        assert!(res.per_layer[0]
            .iter()
            .any(|s| s.kernel == 3 && s.stride == 1 && s.k == 8));
        assert!(res.per_layer[1].iter().any(|s| s.pool == 2));
        assert!(res.per_layer[2]
            .iter()
            .any(|s| s.kernel == 5 && s.stride == 1 && s.k == 16));
        // Dense attack yields a small space.
        let count = res.total.to_u64().unwrap();
        assert!((1..=64).contains(&count), "count {count}");
    }

    #[test]
    fn sparse_count_is_astronomical() {
        // 10 layers, each ~60k observed non-zeros at c = 256, alpha = 0.999.
        let weight_bytes = vec![60_000u64; 10];
        let channels = vec![256usize; 10];
        let count = naive_sparse_count(&weight_bytes, &channels, &SearchSpace::default(), 0.999, 8);
        assert!(count.log10() > 30.0, "log10 = {}", count.log10());
    }

    #[test]
    fn sparse_count_grows_with_alpha() {
        let wb = vec![10_000u64; 5];
        let ch = vec![64usize; 5];
        let loose = naive_sparse_count(&wb, &ch, &SearchSpace::default(), 0.999, 8);
        let tight = naive_sparse_count(&wb, &ch, &SearchSpace::default(), 0.9, 8);
        assert!(loose.log10() > tight.log10());
    }

    #[test]
    fn gpu_hours_scale() {
        let mut c = LogCount::one();
        c.mul_count(8);
        assert!((gpu_hours(&c) - 16.0).abs() < 1e-9);
    }
}
