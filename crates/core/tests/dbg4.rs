use huffduff_core::pattern::Pattern;
use huffduff_core::symbolic::*;

fn letters(rows: &[Vec<Sym>]) -> Pattern {
    let sigs: Vec<Vec<Sym>> = rows.iter().map(|r| multiset_signature(r)).collect();
    Pattern::of(&sigs)
}

#[test]
fn dbg_vgg_prefix() {
    let mut vars = VarSource::new(123);
    let rows0 = impulse_rows(32, 24, &mut vars);
    let c7 = SymConvLayer::new(
        ConvHypothesis {
            kernel: 7,
            stride: 1,
        },
        &mut vars,
    );
    let p1 = SymPoolLayer::new(2, &mut vars);
    let c5 = SymConvLayer::new(
        ConvHypothesis {
            kernel: 5,
            stride: 1,
        },
        &mut vars,
    );
    let p2 = SymPoolLayer::new(2, &mut vars);
    let c3 = SymConvLayer::new(
        ConvHypothesis {
            kernel: 3,
            stride: 1,
        },
        &mut vars,
    );
    let rows: Vec<Vec<Sym>> = rows0
        .iter()
        .map(|r| c3.apply(&p2.apply(&c5.apply(&p1.apply(&c7.apply(r))))))
        .collect();
    println!("rows len {}", rows[0].len());
    println!("input pattern:  {}", letters(&rows));
    for k in [1usize, 3, 5] {
        let h = SymConvLayer::new(
            ConvHypothesis {
                kernel: k,
                stride: 1,
            },
            &mut vars,
        );
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| h.apply(r)).collect();
        println!("conv{k} pattern: {}", letters(&out));
        // also count distinct values within row 12
        let d: std::collections::HashSet<_> = out[12].iter().collect();
        println!("  row12 distinct vals {}/{}", d.len(), out[12].len());
    }
}
