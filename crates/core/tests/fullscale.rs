use hd_accel::{AccelConfig, Device};
use hd_dnn::graph::Params;
use huffduff_core::eval::score_geometry;
use huffduff_core::prober::{probe, ProberConfig};

fn victim(net: hd_dnn::graph::Network, seed: u64) -> Device {
    let mut params = Params::init(&net, seed);
    let profile = hd_dnn::prune::paper_profile(&net);
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, seed ^ 7);
    Device::new(net, params, AccelConfig::eyeriss_v2())
}

#[test]
#[ignore]
fn vgg_s_geometry() {
    let net = hd_dnn::zoo::vgg_s(10);
    let dev = victim(net.clone(), 3);
    let t0 = std::time::Instant::now();
    let res = probe(&dev, &ProberConfig::default()).unwrap();
    println!("vgg probe took {:?} ({} runs)", t0.elapsed(), res.runs_used);
    println!("{}", res.report());
    let score = score_geometry(&net, &res);
    println!(
        "score: {}/{} mismatches {:?}",
        score.correct, score.total, score.mismatches
    );
}

#[test]
#[ignore]
fn resnet18_geometry() {
    let net = hd_dnn::zoo::resnet18(10);
    let dev = victim(net.clone(), 4);
    let t0 = std::time::Instant::now();
    let res = probe(&dev, &ProberConfig::default()).unwrap();
    println!(
        "resnet probe took {:?} ({} runs)",
        t0.elapsed(),
        res.runs_used
    );
    println!("{}", res.report());
    let score = score_geometry(&net, &res);
    println!(
        "score: {}/{} mismatches {:?}",
        score.correct, score.total, score.mismatches
    );
}
