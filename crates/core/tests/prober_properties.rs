//! Property-based tests on the prober's building blocks.

use huffduff_core::pattern::Pattern;
use huffduff_core::symbolic::{
    impulse_rows, multiset_signature, ConvHypothesis, Sym, SymConvLayer, SymPoolLayer, VarSource,
};
use proptest::prelude::*;

fn letters(rows: &[Vec<Sym>]) -> Pattern {
    let sigs: Vec<Vec<Sym>> = rows.iter().map(|r| multiset_signature(r)).collect();
    Pattern::of(&sigs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Single-layer impulse patterns converge after exactly (kernel-1)/2
    /// edge-affected shifts (same padding): the tail letters repeat.
    #[test]
    fn single_conv_prefix_matches_kernel(seed in 0u64..200, k_idx in 0usize..3) {
        let kernel = [1usize, 3, 5][k_idx];
        let mut vars = VarSource::new(seed);
        let rows = impulse_rows(24, 8, &mut vars);
        let layer = SymConvLayer::new(ConvHypothesis { kernel, stride: 1 }, &mut vars);
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| layer.apply(r)).collect();
        let p = letters(&out);
        // Prefix = number of truncated shifts; tail is constant.
        let expected_prefix = kernel / 2;
        let labels = p.labels();
        for i in expected_prefix..labels.len() {
            prop_assert_eq!(labels[i], labels[expected_prefix],
                "kernel {} pattern {}", kernel, p);
        }
        prop_assert_eq!(p.class_count(), expected_prefix + 1);
    }

    /// Hypothesis patterns are deterministic given the variable source
    /// seed, and patterns for different kernels on the same inputs differ
    /// whenever their class counts differ.
    #[test]
    fn patterns_distinguish_kernel_sizes(seed in 0u64..200) {
        let mut vars = VarSource::new(seed);
        let rows = impulse_rows(24, 8, &mut vars);
        let l3 = SymConvLayer::new(ConvHypothesis { kernel: 3, stride: 1 }, &mut vars);
        let l5 = SymConvLayer::new(ConvHypothesis { kernel: 5, stride: 1 }, &mut vars);
        let p3 = letters(&rows.iter().map(|r| l3.apply(r)).collect::<Vec<_>>());
        let p5 = letters(&rows.iter().map(|r| l5.apply(r)).collect::<Vec<_>>());
        prop_assert!(p3 != p5, "3x3 {} vs 5x5 {}", p3, p5);
        // And the smaller kernel's pattern is a coarsening of the larger's
        // (one fewer edge distinction).
        prop_assert!(p3.is_coarsening_of(&p5));
    }

    /// Pooling creates shift-periodicity: letters repeat with the pool
    /// factor once past the edge prefix.
    #[test]
    fn pooling_periodicity(seed in 0u64..200, factor in 2usize..4) {
        let mut vars = VarSource::new(seed);
        let shifts = 12;
        let rows = impulse_rows(36, shifts, &mut vars);
        let conv = SymConvLayer::new(ConvHypothesis { kernel: 3, stride: 1 }, &mut vars);
        let pool = SymPoolLayer::new(factor, &mut vars);
        let out: Vec<Vec<Sym>> = rows.iter().map(|r| pool.apply(&conv.apply(r))).collect();
        let labels = letters(&out).labels().to_vec();
        // Past the first `factor + 1` shifts, labels repeat with period f.
        for i in (factor + 1)..(shifts - factor) {
            prop_assert_eq!(labels[i], labels[i + factor],
                "factor {} labels {:?}", factor, labels);
        }
    }

    /// Multiset signatures are permutation-invariant and collision-free
    /// across genuinely different variable draws.
    #[test]
    fn signatures_separate_distinct_rows(seed in 0u64..500) {
        let mut vars = VarSource::new(seed);
        let a: Vec<Sym> = (0..6).map(|_| vars.fresh()).collect();
        let mut b = a.clone();
        b.reverse();
        prop_assert_eq!(multiset_signature(&a), multiset_signature(&b));
        let c: Vec<Sym> = (0..6).map(|_| vars.fresh()).collect();
        prop_assert!(multiset_signature(&a) != multiset_signature(&c));
    }
}
