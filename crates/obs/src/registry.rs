//! The process-global telemetry store.
//!
//! Counters — the hot path now that the prober fans probe runs across a
//! worker pool — are sharded per thread: each thread owns an
//! [`Arc<Shard>`] holding its private map, so an increment locks only the
//! caller's shard and never serializes the pool on a global mutex.
//! `snapshot` merges the shards (addition is order-independent) and
//! `reset` clears them in place, so totals are exact under any
//! interleaving and survive worker-thread exit (the registry keeps every
//! shard alive).
//!
//! Histograms and spans stay behind the single `Mutex<Inner>`: they fire
//! at layer/probe granularity — thousands of events per second, not
//! millions — and the disabled path never reaches any lock at all.

use crate::export::{CounterSnap, HistSnap, Snapshot, SpanSnap};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on retained span records; beyond it spans are counted in
/// `spans_dropped` instead of stored. A runaway probe campaign then costs
/// bounded memory and the exports report the truncation explicitly.
pub const MAX_SPANS: usize = 1 << 20;

/// `(metric name, label)` — the key of every counter and histogram.
///
/// Names are `&'static str` by design: the set of metrics is closed at
/// compile time, labels carry the open-ended dimension (layer name,
/// transfer type, shift index).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Key {
    pub name: &'static str,
    pub label: String,
}

/// Order-independent aggregate of histogram samples. `count`, `min`, and
/// `max` are exact under any thread interleaving; `sum` is exact in value
/// terms only up to f64 addition order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct HistStats {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistStats {
    fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

/// One completed span.
#[derive(Clone, Debug)]
pub(crate) struct SpanRecord {
    pub name: &'static str,
    pub label: String,
    pub tid: u64,
    pub start_us: u64,
    pub dur_us: u64,
}

#[derive(Default)]
struct Inner {
    hists: BTreeMap<Key, HistStats>,
    spans: Vec<SpanRecord>,
    spans_dropped: u64,
}

/// One thread's private counter map. Locked only by its owner thread on
/// the increment path; `snapshot`/`reset` lock shards one at a time from
/// whatever thread collects.
#[derive(Default)]
struct Shard {
    counters: Mutex<BTreeMap<Key, u64>>,
}

impl Shard {
    fn add(&self, name: &'static str, label: &str, delta: u64) {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let slot = map
            .entry(Key {
                name,
                label: label.to_string(),
            })
            .or_insert(0);
        *slot = slot.saturating_add(delta);
    }
}

pub(crate) struct Registry {
    inner: Mutex<Inner>,
    /// Every counter shard ever handed to a thread, plus the fallback.
    /// Shards are never removed: counts must outlive the worker threads
    /// that produced them.
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Shard of last resort, used when thread-local storage is already
    /// torn down (increments from thread-exit paths).
    fallback: Shard,
    /// Process-wide monotonic epoch: all span timestamps are microseconds
    /// since the registry's first use. Survives `reset` so successive
    /// collection windows never produce overlapping Chrome timelines.
    epoch: Instant,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

pub(crate) fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| Registry {
        inner: Mutex::new(Inner::default()),
        shards: Mutex::new(Vec::new()),
        fallback: Shard::default(),
        epoch: Instant::now(),
    })
}

thread_local! {
    /// This thread's counter shard, registered with the global registry on
    /// first use so snapshots can find it after the thread exits.
    static SHARD: Arc<Shard> = {
        let shard = Arc::new(Shard::default());
        let registry = global();
        registry
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&shard));
        shard
    };
}

/// Small dense thread id for Chrome trace `tid` fields (std's `ThreadId`
/// has no stable integer accessor). Assigned on first telemetry use per
/// thread, in arrival order.
pub(crate) fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        // hd-lint: allow(atomic-ordering) -- a unique-id ticket: fetch_add's atomicity guarantees distinctness, and nothing is published through it
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|id| *id)
}

impl Registry {
    /// Microseconds on the registry's monotonic clock.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Telemetry must never take the process down: a panic while the
        // lock was held (poisoned mutex) still leaves a usable map.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn counter_add(&self, name: &'static str, label: &str, delta: u64) {
        match SHARD.try_with(Arc::clone) {
            Ok(shard) => shard.add(name, label, delta),
            // Thread-local storage already destroyed (increment during
            // thread teardown) — fall back to the shared shard.
            Err(_) => self.fallback.add(name, label, delta),
        }
    }

    /// Sums every shard's counters into one ordered map.
    fn merged_counters(&self) -> BTreeMap<Key, u64> {
        let mut merged: BTreeMap<Key, u64> = BTreeMap::new();
        let shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
        for shard in shards.iter().map(Arc::as_ref).chain([&self.fallback]) {
            let map = shard.counters.lock().unwrap_or_else(|e| e.into_inner());
            for (k, &v) in map.iter() {
                let slot = merged.entry(k.clone()).or_insert(0);
                *slot = slot.saturating_add(v);
            }
        }
        merged
    }

    pub fn observe(&self, name: &'static str, label: &str, value: f64) {
        let mut inner = self.lock();
        inner
            .hists
            .entry(Key {
                name,
                label: label.to_string(),
            })
            .or_default()
            .record(value);
    }

    pub fn push_span(&self, record: SpanRecord) {
        let mut inner = self.lock();
        if inner.spans.len() >= MAX_SPANS {
            inner.spans_dropped += 1;
        } else {
            inner.spans.push(record);
        }
    }

    pub fn reset(&self) {
        *self.lock() = Inner::default();
        let shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
        for shard in shards.iter().map(Arc::as_ref).chain([&self.fallback]) {
            shard
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
        }
    }

    pub fn snapshot(&self) -> Snapshot {
        let counters = self.merged_counters();
        let inner = self.lock();
        Snapshot {
            counters: counters
                .iter()
                .map(|(k, &v)| CounterSnap {
                    name: k.name.to_string(),
                    label: k.label.clone(),
                    value: v,
                })
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| HistSnap {
                    name: k.name.to_string(),
                    label: k.label.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                })
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|s| SpanSnap {
                    name: s.name.to_string(),
                    label: s.label.clone(),
                    tid: s.tid,
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                })
                .collect(),
            spans_dropped: inner.spans_dropped,
        }
    }
}
