//! RAII spans: construct to start, drop to record.

use crate::registry::{self, SpanRecord};

/// A live span. Created by [`crate::span`]; records itself into the global
/// registry when dropped. While telemetry is disabled the guard is inert —
/// no label allocation, no timestamps, and drop does nothing.
///
/// Spans are recorded even if telemetry was disabled *between* start and
/// drop: a span that began under an enabled registry describes work that
/// was meant to be measured, and dropping it silently would leave its
/// start dangling in the Chrome timeline.
#[must_use = "a span measures the scope it lives in; drop it at the end of the work"]
pub struct Span {
    active: Option<Active>,
}

struct Active {
    name: &'static str,
    label: String,
    start_us: u64,
}

impl Span {
    pub(crate) fn start(name: &'static str, label: &str) -> Span {
        if !crate::enabled() {
            return Span { active: None };
        }
        Span {
            active: Some(Active {
                name,
                label: label.to_string(),
                start_us: registry::global().now_us(),
            }),
        }
    }

    /// Whether this span is actually recording (telemetry was enabled at
    /// construction).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let reg = registry::global();
        let end_us = reg.now_us();
        reg.push_span(SpanRecord {
            name: active.name,
            label: active.label,
            tid: registry::thread_ordinal(),
            start_us: active.start_us,
            dur_us: end_us.saturating_sub(active.start_us),
        });
    }
}
