//! Snapshot of the registry plus the three export formats.
//!
//! * [`Snapshot::summary_table`] — human-readable breakdown for stdout,
//! * [`Snapshot::to_json`] — stable-schema JSON (`"schema": "hd-obs/v1"`),
//!   the backbone format for `BENCH_*.json`-style artifacts,
//! * [`Snapshot::to_chrome_trace`] — Chrome trace-event JSON: load the file
//!   in `chrome://tracing` or <https://ui.perfetto.dev> to see the span
//!   timeline across threads.

use std::fmt::Write as _;

/// One counter at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnap {
    /// Metric name (compile-time closed set, e.g. `dram.read.bytes`).
    pub name: String,
    /// Open-ended dimension (transfer type, layer name, shift index…).
    pub label: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram aggregate at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnap {
    /// Metric name.
    pub name: String,
    /// Label dimension.
    pub label: String,
    /// Number of samples (order-independent, safe to pin in tests).
    pub count: u64,
    /// Sum of samples. Exact only up to f64 addition order across threads;
    /// don't pin bitwise in golden tests.
    pub sum: f64,
    /// Smallest sample (order-independent).
    pub min: f64,
    /// Largest sample (order-independent).
    pub max: f64,
}

impl HistSnap {
    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One recorded span at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnap {
    /// Span name.
    pub name: String,
    /// Label (rendered into the Chrome trace `args`).
    pub label: String,
    /// Dense thread ordinal (Chrome `tid`).
    pub tid: u64,
    /// Start, microseconds on the process-monotonic clock (Chrome `ts`).
    pub start_us: u64,
    /// Duration in microseconds (Chrome `dur`).
    pub dur_us: u64,
}

/// A consistent copy of the registry. Counters and histograms are sorted
/// by `(name, label)`; spans are in completion order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, sorted by `(name, label)`.
    pub counters: Vec<CounterSnap>,
    /// All histograms, sorted by `(name, label)`.
    pub hists: Vec<HistSnap>,
    /// All retained spans, in completion order.
    pub spans: Vec<SpanSnap>,
    /// Spans discarded after the [`crate::MAX_SPANS`] cap was hit.
    pub spans_dropped: u64,
}

impl Snapshot {
    /// The value of counter `(name, label)`, if recorded.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map(|c| c.value)
    }

    /// Sum of counter `name` across all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The histogram aggregate for `(name, label)`, if recorded.
    pub fn hist(&self, name: &str, label: &str) -> Option<&HistSnap> {
        self.hists
            .iter()
            .find(|h| h.name == name && h.label == label)
    }

    /// Number of recorded spans named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Human-readable summary: counters, histograms, and per-name span
    /// aggregates, each section sorted for stable diffs.
    pub fn summary_table(&self) -> String {
        let mut s = String::from("== telemetry summary ==\n");
        if self.counters.is_empty() && self.hists.is_empty() && self.spans.is_empty() {
            s.push_str("  (empty — was telemetry enabled?)\n");
            return s;
        }
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for c in &self.counters {
                let _ = writeln!(s, "  {:<44} {:>16}", key_of(&c.name, &c.label), c.value);
            }
        }
        if !self.hists.is_empty() {
            s.push_str("histograms (count / mean / min / max):\n");
            for h in &self.hists {
                let _ = writeln!(
                    s,
                    "  {:<44} {:>8}  {:>12.1}  {:>12.1}  {:>12.1}",
                    key_of(&h.name, &h.label),
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
        if !self.spans.is_empty() {
            s.push_str("spans (count / total ms / mean us):\n");
            for (name, count, total_us) in self.span_aggregates() {
                let _ = writeln!(
                    s,
                    "  {:<44} {:>8}  {:>12.3}  {:>12.1}",
                    name,
                    count,
                    total_us as f64 / 1e3,
                    total_us as f64 / count.max(1) as f64
                );
            }
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(s, "  ({} spans dropped past the cap)", self.spans_dropped);
        }
        s
    }

    /// Stable-schema JSON export.
    ///
    /// Schema (`"hd-obs/v1"`): top-level object with `schema` (string),
    /// `counters` (array of `{name, label, value}`), `histograms` (array of
    /// `{name, label, count, sum, min, max, mean}`), `spans` (array of
    /// per-name aggregates `{name, count, total_us}`), and `spans_dropped`
    /// (number). Arrays are sorted by `(name, label)`; the full span list is
    /// deliberately left to [`Snapshot::to_chrome_trace`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"hd-obs/v1\",\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"name\": {}, \"label\": {}, \"value\": {}}}",
                json_str(&c.name),
                json_str(&c.label),
                c.value
            );
        }
        s.push_str(if self.counters.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"histograms\": [");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"name\": {}, \"label\": {}, \"count\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"mean\": {}}}",
                json_str(&h.name),
                json_str(&h.label),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.mean())
            );
        }
        s.push_str(if self.hists.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"spans\": [");
        let aggs = self.span_aggregates();
        for (i, (name, count, total_us)) in aggs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"name\": {}, \"count\": {count}, \"total_us\": {total_us}}}",
                json_str(name)
            );
        }
        s.push_str(if aggs.is_empty() { "],\n" } else { "\n  ],\n" });
        let _ = writeln!(s, "  \"spans_dropped\": {}\n}}", self.spans_dropped);
        s
    }

    /// Chrome trace-event export: one complete (`"ph": "X"`) event per
    /// span. Load the file in `chrome://tracing` or ui.perfetto.dev.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n  {{\"name\": {}, \"cat\": \"hd-obs\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"label\": {}}}}}",
                json_str(&sp.name),
                sp.start_us,
                sp.dur_us,
                sp.tid,
                json_str(&sp.label)
            );
        }
        s.push_str(if self.spans.is_empty() {
            "]}\n"
        } else {
            "\n]}\n"
        });
        s
    }

    /// `(name, count, total_us)` per span name, sorted by name.
    fn span_aggregates(&self) -> Vec<(String, usize, u64)> {
        let mut by_name: std::collections::BTreeMap<&str, (usize, u64)> = Default::default();
        for sp in &self.spans {
            let e = by_name.entry(&sp.name).or_default();
            e.0 += 1;
            e.1 += sp.dur_us;
        }
        by_name
            .into_iter()
            .map(|(name, (count, total))| (name.to_string(), count, total))
            .collect()
    }
}

fn key_of(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}/{label}")
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal: Rust's shortest-round-trip `{}` format is valid
/// JSON for finite values; non-finite values (which [`crate::observe`]
/// already filters) degrade to 0 rather than emitting invalid tokens.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![
                CounterSnap {
                    name: "dram.read.bytes".into(),
                    label: "weights".into(),
                    value: 4096,
                },
                CounterSnap {
                    name: "probe.runs".into(),
                    label: String::new(),
                    value: 12,
                },
            ],
            hists: vec![HistSnap {
                name: "encode.duration_ps".into(),
                label: "conv1".into(),
                count: 2,
                sum: 3.0,
                min: 1.0,
                max: 2.0,
            }],
            spans: vec![
                SpanSnap {
                    name: "device.layer".into(),
                    label: "conv1".into(),
                    tid: 1,
                    start_us: 10,
                    dur_us: 5,
                },
                SpanSnap {
                    name: "device.layer".into(),
                    label: "pool2".into(),
                    tid: 1,
                    start_us: 16,
                    dur_us: 3,
                },
            ],
            spans_dropped: 0,
        }
    }

    #[test]
    fn accessors_find_entries() {
        let s = sample_snapshot();
        assert_eq!(s.counter("dram.read.bytes", "weights"), Some(4096));
        assert_eq!(s.counter_total("dram.read.bytes"), 4096);
        assert_eq!(s.hist("encode.duration_ps", "conv1").unwrap().count, 2);
        assert_eq!(s.span_count("device.layer"), 2);
    }

    #[test]
    fn summary_table_mentions_every_section() {
        let t = sample_snapshot().summary_table();
        assert!(t.contains("counters:"));
        assert!(t.contains("dram.read.bytes/weights"));
        assert!(t.contains("histograms"));
        assert!(t.contains("spans"));
    }

    #[test]
    fn json_export_parses_and_round_trips_values() {
        let snap = sample_snapshot();
        let v = crate::json::Json::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(v.get("schema").and_then(|j| j.as_str()), Some("hd-obs/v1"));
        let counters = v.get("counters").and_then(|j| j.as_array()).unwrap();
        assert_eq!(counters.len(), 2);
        assert_eq!(
            counters[0].get("value").and_then(|j| j.as_f64()),
            Some(4096.0)
        );
        let spans = v.get("spans").and_then(|j| j.as_array()).unwrap();
        assert_eq!(spans[0].get("count").and_then(|j| j.as_f64()), Some(2.0));
        assert_eq!(spans[0].get("total_us").and_then(|j| j.as_f64()), Some(8.0));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let trace = sample_snapshot().to_chrome_trace();
        let v = crate::json::Json::parse(&trace).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|j| j.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(|j| j.as_str()), Some("X"));
            assert!(e.get("ts").and_then(|j| j.as_f64()).is_some());
            assert!(e.get("dur").and_then(|j| j.as_f64()).is_some());
        }
    }

    #[test]
    fn empty_snapshot_exports_are_valid() {
        let snap = Snapshot::default();
        assert!(crate::json::Json::parse(&snap.to_json()).is_ok());
        assert!(crate::json::Json::parse(&snap.to_chrome_trace()).is_ok());
        assert!(snap.summary_table().contains("empty"));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
