//! A minimal JSON value + recursive-descent parser.
//!
//! Exists so that telemetry round-trip tests and the bench regression
//! guard can read JSON without an external dependency (the registry
//! mirror is unreachable in this build environment — see `vendor/`).
//! Supports the full JSON grammar except `\u` surrogate pairs, which
//! none of our exports produce.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved as written; duplicate keys are
    /// kept (lookup returns the first).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses `input` as a single JSON document (trailing whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is `true`/`false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"open",
            "01x",
            "nul",
            "[1] extra",
            "{'a': 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{ }").unwrap(), Json::Obj(vec![]));
    }
}
