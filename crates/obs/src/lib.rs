//! # hd-obs — telemetry for the HuffDuff workspace
//!
//! A zero-dependency observability substrate shared by the device
//! simulator, the prober, and the attack orchestration: thread-safe
//! counters and histograms, RAII [`Span`]s with monotonic timestamps, and
//! three export formats (a human-readable summary table, stable-schema
//! JSON, and Chrome trace-event JSON loadable in `chrome://tracing` /
//! `ui.perfetto.dev`).
//!
//! # Overhead contract
//!
//! Telemetry is **off by default**. Every instrumentation entry point
//! ([`counter_add`], [`observe`], [`span`]) first reads a single global
//! `AtomicBool` with `Ordering::Relaxed` and returns immediately when
//! disabled — no locks, no allocation, no timestamps. Instrumented code
//! therefore pays one relaxed atomic load per call site when telemetry is
//! off, and instrumentation never feeds back into computation, so enabling
//! or disabling telemetry leaves every simulated trace, timing, and attack
//! outcome bit-identical (asserted by `tests/obs_invariance.rs` in the
//! workspace root).
//!
//! # Model
//!
//! * **Counters** are monotonically increasing `u64`s keyed by
//!   `(name, label)` — e.g. `("dram.read.bytes", "weights")`. Addition is
//!   commutative, so counter values are deterministic even when updates
//!   race across probe worker threads.
//! * **Histograms** aggregate `f64` samples per `(name, label)` into
//!   count/sum/min/max. Count, min, and max are order-independent; `sum`
//!   may differ in the last bits across thread interleavings (floating
//!   point addition is not associative) — pin only the order-independent
//!   fields in golden tests.
//! * **Spans** are RAII timers: [`span`] records the start, dropping the
//!   returned [`Span`] records the duration. Timestamps are microseconds
//!   on a process-wide monotonic clock (first-use epoch), which is exactly
//!   the Chrome trace-event `ts` domain.
//!
//! State lives in one process-global registry. [`reset`] clears it;
//! [`snapshot`] takes a consistent copy for export. Tests that assert on
//! global counters must serialize themselves (the registry is shared by
//! every thread in the process).
//!
//! # Example
//!
//! ```
//! hd_obs::reset();
//! hd_obs::set_enabled(true);
//! {
//!     let _span = hd_obs::span("work", "demo");
//!     hd_obs::counter_add("bytes.moved", "demo", 512);
//!     hd_obs::observe("batch.size", "demo", 32.0);
//! }
//! hd_obs::set_enabled(false);
//! let snap = hd_obs::snapshot();
//! assert_eq!(snap.counter("bytes.moved", "demo"), Some(512));
//! assert_eq!(snap.span_count("work"), 1);
//! let json = snap.to_json();
//! assert!(hd_obs::json::Json::parse(&json).is_ok());
//! ```

pub mod export;
pub mod json;
mod registry;
mod span;

pub use export::{CounterSnap, HistSnap, Snapshot, SpanSnap};
pub use registry::MAX_SPANS;
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry collection is currently enabled.
///
/// One relaxed atomic load: cheap enough for per-layer (not per-element)
/// hot paths. Instrumented code may use this to guard label formatting or
/// other prep work that would otherwise run while disabled.
#[inline]
pub fn enabled() -> bool {
    // hd-lint: allow(atomic-ordering) -- advisory gate on a monotonic flag; recorded data publishes via the registry mutexes, not this load
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables telemetry collection.
///
/// Disabling does not clear previously recorded data; see [`reset`].
pub fn set_enabled(on: bool) {
    // hd-lint: allow(atomic-ordering) -- flips an advisory gate; callers needing a cut-over barrier synchronize on the registry lock
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `delta` to the counter `(name, label)`. No-op while disabled.
#[inline]
pub fn counter_add(name: &'static str, label: &str, delta: u64) {
    if !enabled() {
        return;
    }
    registry::global().counter_add(name, label, delta);
}

/// Records one sample into the histogram `(name, label)`. No-op while
/// disabled. Non-finite samples are ignored (they would poison the JSON
/// export).
#[inline]
pub fn observe(name: &'static str, label: &str, value: f64) {
    if !enabled() || !value.is_finite() {
        return;
    }
    registry::global().observe(name, label, value);
}

/// Starts an RAII span; the span ends (and is recorded) when the returned
/// guard drops. Returns an inert guard while disabled.
#[inline]
pub fn span(name: &'static str, label: &str) -> Span {
    Span::start(name, label)
}

/// Clears all recorded counters, histograms, and spans.
///
/// The monotonic epoch is preserved so span timestamps stay monotonic
/// across resets (Chrome traces from successive windows never overlap).
pub fn reset() {
    registry::global().reset();
}

/// Takes a consistent copy of everything recorded so far.
pub fn snapshot() -> Snapshot {
    registry::global().snapshot()
}

/// Microseconds elapsed on the process-wide monotonic clock (first-use
/// epoch) — the same domain as span timestamps.
///
/// This is the sanctioned wall-clock read for the rest of the workspace:
/// the `no-wallclock` lint in `hd-lint` rejects direct `Instant::now()` /
/// `SystemTime` uses outside `hd-obs`, so latency telemetry elsewhere
/// should difference two `monotonic_us()` readings instead.
#[inline]
pub fn monotonic_us() -> u64 {
    registry::global().now_us()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests that read it must serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_clean_registry<R>(f: impl FnOnce() -> R) -> R {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        counter_add("c", "l", 5);
        observe("h", "l", 1.0);
        drop(span("s", "l"));
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_per_name_label() {
        with_clean_registry(|| {
            counter_add("bytes", "read", 3);
            counter_add("bytes", "read", 4);
            counter_add("bytes", "write", 10);
            let snap = snapshot();
            assert_eq!(snap.counter("bytes", "read"), Some(7));
            assert_eq!(snap.counter("bytes", "write"), Some(10));
            assert_eq!(snap.counter_total("bytes"), 17);
            assert_eq!(snap.counter("bytes", "missing"), None);
        });
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        with_clean_registry(|| {
            for v in [4.0, 1.0, 9.0] {
                observe("lat", "", v);
            }
            observe("lat", "", f64::NAN); // ignored
            let snap = snapshot();
            let h = snap.hist("lat", "").expect("histogram recorded");
            assert_eq!(h.count, 3);
            assert_eq!(h.min, 1.0);
            assert_eq!(h.max, 9.0);
            assert!((h.sum - 14.0).abs() < 1e-12);
            assert!((h.mean() - 14.0 / 3.0).abs() < 1e-12);
        });
    }

    #[test]
    fn spans_record_duration_and_survive_threads() {
        with_clean_registry(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _sp = span("worker", "t");
                    });
                }
            });
            {
                let _sp = span("outer", "");
            }
            let snap = snapshot();
            assert_eq!(snap.span_count("worker"), 4);
            assert_eq!(snap.span_count("outer"), 1);
            for sp in &snap.spans {
                assert!(sp.start_us <= sp.start_us + sp.dur_us);
            }
        });
    }

    #[test]
    fn counters_are_deterministic_under_contention() {
        with_clean_registry(|| {
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..1000 {
                            counter_add("contended", "", 1);
                        }
                    });
                }
            });
            assert_eq!(snapshot().counter("contended", ""), Some(8000));
        });
    }

    #[test]
    fn reset_clears_but_keeps_time_monotonic() {
        with_clean_registry(|| {
            {
                let _sp = span("a", "");
            }
            let t1 = snapshot().spans[0].start_us;
            reset();
            {
                let _sp = span("b", "");
            }
            let snap = snapshot();
            assert_eq!(snap.spans.len(), 1);
            assert!(snap.spans[0].start_us >= t1, "epoch must survive reset");
        });
    }
}
