//! Seeded-schedule stress tests for the worker pool.
//!
//! The pool promises bit-identical, index-ordered output for *every*
//! interleaving, but an unperturbed run only exercises whichever schedules
//! the host happens to produce. These tests arm [`hd_pool::set_stress_seed`]
//! so deterministic yields at the claim/finish/steal sites force 32
//! reproducibly different schedules, then pin three contracts against the
//! serial reference:
//!
//! 1. `pool.map` output is bit-identical to the serial loop,
//! 2. a full [`huffduff_core::prober::probe_with_pool`] campaign produces a
//!    bit-identical `ProberResult`,
//! 3. error reduction stays index-ordered: the caller always surfaces the
//!    *lowest* failing index, no matter which task failed first in time.
//!
//! Seeds are disarmed after each test: the hook is process-global, so a
//! leaked seed would perturb (harmlessly, but confusingly) any test that
//! runs later in the same binary.

use hd_accel::{AccelConfig, Device};
use hd_dnn::graph::{NetworkBuilder, Params};
use hd_pool::{set_stress_seed, WorkerPool};
use huffduff_core::prober::{probe_with_pool, ProberConfig};

const SEEDS: u64 = 32;

/// Disarms the stress hook even when an assertion unwinds.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        set_stress_seed(0);
    }
}

/// Skewed floating-point work: enough iterations that tasks genuinely
/// overlap, skewed by index so the claim order differs from the finish
/// order (the exact case chunk-free stealing exists for).
fn skewed_task(i: usize) -> f64 {
    let mut acc = i as f64;
    let rounds = 200 + (i % 7) * 400;
    for k in 0..rounds {
        acc = (acc * 1.000_000_1 + k as f64).sin();
    }
    acc
}

#[test]
fn map_is_bit_identical_across_32_seeded_schedules() {
    let _guard = Disarm;
    let n = 64;
    let serial: Vec<f64> = (0..n).map(skewed_task).collect();
    let pool = WorkerPool::new(4);
    for seed in 1..=SEEDS {
        set_stress_seed(seed);
        let par = pool.map(n, 4, skewed_task);
        // Bit-identical, not approximately equal: compare the raw bits.
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(serial_bits, par_bits, "seed {seed}");
    }
}

#[test]
fn prober_result_is_bit_identical_across_32_seeded_schedules() {
    let _guard = Disarm;
    let mut b = NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    b.conv(x, 8, 3, 1);
    let net = b.build();
    let mut params = Params::init(&net, 5);
    let profile = hd_dnn::prune::paper_profile(&net);
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 4);
    let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
    let cfg = ProberConfig {
        shifts: 12,
        max_probes: 6,
        stable_probes: 2,
        kernels: vec![1, 3, 5],
        strides: vec![1, 2],
        pools: vec![2],
        seed: 99,
        parallelism: None,
    };

    // Reference: the single-participant (serial) schedule.
    let serial_pool = WorkerPool::new(0);
    let reference = probe_with_pool(&dev, &cfg, &serial_pool).expect("serial probe");

    let pool = WorkerPool::new(3);
    for seed in 1..=SEEDS {
        set_stress_seed(seed);
        let stressed = probe_with_pool(&dev, &cfg, &pool).expect("stressed probe");
        assert_eq!(reference, stressed, "seed {seed}");
    }
}

#[test]
fn errors_reduce_in_index_order_across_32_seeded_schedules() {
    let _guard = Disarm;
    let n = 48;
    let fail_from = 17;
    let pool = WorkerPool::new(4);
    for seed in 1..=SEEDS {
        set_stress_seed(seed);
        let results = pool.map(n, 4, |i| {
            let v = skewed_task(i);
            if i >= fail_from {
                Err(i)
            } else {
                Ok(v.to_bits())
            }
        });
        // Index-ordered reduction: the first error the caller sees must be
        // the lowest failing index, regardless of completion order.
        let first_err = results.into_iter().collect::<Result<Vec<u64>, usize>>();
        assert_eq!(first_err.unwrap_err(), fail_from, "seed {seed}");
    }
}
