//! # hd-pool — persistent work-stealing worker pool
//!
//! The prober fans the independent inferences of one probe family across
//! cores thousands of times per attack. Spawning OS threads per family
//! (the old `std::thread::scope` design) pays thread creation and teardown
//! on every round; this crate instead keeps one set of workers alive for
//! the whole probe/attack/campaign and feeds them jobs.
//!
//! Zero dependencies by design: the pool is the workspace's sanctioned
//! thread-spawn site (`hd-lint`'s `no-bare-spawn` rule forbids spawning
//! anywhere else), so it must sit below every other crate.
//!
//! # Scheduling model
//!
//! A job is `n` independent tasks indexed `0..n`. Instead of static
//! chunking (which straggles when per-task cost is skewed — exactly the
//! case for probe images of different sparsity), every participant claims
//! the next unclaimed index from a shared atomic counter: chunk-free
//! dynamic stealing with perfectly balanced tails. Task indices are claimed
//! in order, results land in per-index slots, and the caller reduces in
//! index order — so the output is bit-identical regardless of worker count
//! or interleaving.
//!
//! The **caller participates**: [`WorkerPool::map`] runs claims on the
//! calling thread too, so a pool with zero background threads (e.g. a
//! 1-core host) degrades to exactly the serial loop, and a job is never
//! stranded waiting for a busy pool.
//!
//! # Panics
//!
//! A panicking task does not take down a worker: the payload is captured,
//! remaining claims are drained without running, and the panic resumes on
//! the **caller** of [`WorkerPool::map`] — same observable behavior as the
//! serial loop, minus the tasks that had already started elsewhere.
//!
//! # Example
//!
//! ```
//! let pool = hd_pool::WorkerPool::new(2);
//! let squares = pool.map(8, 4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// --- Seeded schedule perturbation (stress testing) -----------------------
//
// The pool's bit-identical-output contract must hold for *every*
// interleaving, but an unperturbed test run explores only the handful of
// schedules the host's scheduler happens to produce. The stress hook lets a
// test inject deterministic, seed-controlled yields at the scheduling
// decision points (claim, completion signal, steal admission) so 32 seeds
// exercise 32 reproducibly different interleavings. Always compiled — the
// disarmed cost is one relaxed load and a branch per site — so the tested
// binary is the shipped binary.

/// The armed stress seed; `0` means disarmed (the default).
static STRESS_SEED: AtomicU64 = AtomicU64::new(0);

/// Yield-site id: a task index was just claimed in [`Job::work`].
const SITE_CLAIM: u64 = 1;
/// Yield-site id: about to publish a completion via `finished`.
const SITE_FINISH: u64 = 2;
/// Yield-site id: a worker admitted itself to a stolen job.
const SITE_STEAL: u64 = 3;

/// Arms (non-zero) or disarms (zero) the deterministic stress yields.
///
/// Process-global: intended for single-campaign stress tests that set a
/// seed, run a job, and compare against the serial schedule. The injected
/// yields perturb timing only — they cannot change claim atomicity — so
/// results must stay bit-identical under every seed.
pub fn set_stress_seed(seed: u64) {
    // hd-lint: allow(atomic-ordering) -- test-arming knob; the hook only perturbs timing, so no ordering obligation exists
    STRESS_SEED.store(seed, Ordering::Relaxed);
}

/// Bounded deterministic yield: mixes `(seed, site, step)` through a
/// SplitMix64 finalizer and spins `0..=3` `yield_now`s. Disarmed, this is
/// one relaxed load and a taken branch.
#[inline]
fn stress_yield(site: u64, step: u64) {
    // hd-lint: allow(atomic-ordering) -- reads the arming knob; stale values only change which schedules get explored
    let seed = STRESS_SEED.load(Ordering::Relaxed);
    if seed == 0 {
        return;
    }
    let mut z = seed
        ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ step.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    for _ in 0..(z & 3) {
        std::thread::yield_now();
    }
}

/// Lifetime-erased pointer to a job's task closure.
///
/// Safety: the pointee lives on the stack frame of [`WorkerPool::map`],
/// which does not return until every claimed index has finished, and
/// claims past `n` never dereference it — so no worker can observe a
/// dangling pointer.
struct TaskPtr(*const (dyn Fn(usize) + Sync + 'static));

// Safety: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer itself is only ever dereferenced while the owning `map`
// frame is alive (see `TaskPtr` docs), so sending the pointer is sound.
// hd-lint: allow(no-unsafe) -- Send/Sync argument in the comment above
unsafe impl Send for TaskPtr {}
// hd-lint: allow(no-unsafe) -- Send/Sync argument in the comment above
unsafe impl Sync for TaskPtr {}

/// One enqueued job: `n` tasks claimed off a shared counter.
struct Job {
    task: TaskPtr,
    n: usize,
    /// Next unclaimed task index; `fetch_add` hands out each index exactly
    /// once. Values `>= n` mean the job is fully claimed.
    next: AtomicUsize,
    /// Workers currently inside this job (caller included), bounded by
    /// `cap` so one job cannot monopolize a shared pool.
    active: AtomicUsize,
    cap: usize,
    /// Completed tasks; the increment that reaches `n` signals `done`.
    finished: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First captured panic payload (resumed on the caller).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    panicked: AtomicBool,
}

impl Job {
    /// Claims and runs tasks until the job is fully claimed.
    fn work(&self) {
        loop {
            // hd-lint: allow(atomic-ordering) -- the claim counter only needs atomicity; slot writes publish via the AcqRel `finished` increment below
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            stress_yield(SITE_CLAIM, i as u64);
            // hd-lint: allow(atomic-ordering) -- advisory fast-path skip; a stale false only runs one extra task, correctness comes from the panic-slot mutex
            if !self.panicked.load(Ordering::Relaxed) {
                // AssertUnwindSafe: on panic the caller resumes the payload
                // without ever reading the (possibly torn) result slots.
                if let Err(payload) =
                    // hd-lint: allow(no-unsafe) -- TaskPtr pointee outlives the job (see TaskPtr docs)
                    catch_unwind(AssertUnwindSafe(|| unsafe { (*self.task.0)(i) }))
                {
                    // hd-lint: allow(atomic-ordering) -- advisory flag; the payload itself is published by the panic-slot mutex on the next line
                    self.panicked.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            stress_yield(SITE_FINISH, i as u64);
            // AcqRel chains every participant's slot writes into the final
            // increment, so the caller (synchronizing via `done`) sees them.
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Removes `job` from the queue if still present (jobs are also reaped
    /// lazily by workers once fully claimed).
    fn remove(&self, job: &Arc<Job>) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.retain(|j| !Arc::ptr_eq(j, job));
    }
}

/// Sends the raw slot pointer of `map`'s result vector across threads.
///
/// Safety: each task index writes only its own slot, and the caller reads
/// the slots only after every task finished (synchronized via `done`).
struct SlotPtr<T>(*mut Option<T>);
// hd-lint: allow(no-unsafe) -- disjoint-slot protocol in the comment above
unsafe impl<T: Send> Send for SlotPtr<T> {}
// hd-lint: allow(no-unsafe) -- disjoint-slot protocol in the comment above
unsafe impl<T: Send> Sync for SlotPtr<T> {}

impl<T> SlotPtr<T> {
    /// Safety: each index must be written at most once, and reads must be
    /// synchronized after all writes (both upheld by the claim protocol).
    // hd-lint: allow(no-unsafe) -- unsafe fn: obligations documented on the item
    unsafe fn write(&self, i: usize, v: T) {
        *self.0.add(i) = Some(v);
    }
}

/// A persistent pool of worker threads executing index-claimed jobs.
///
/// Create one per campaign (or use [`WorkerPool::global`]) and reuse it
/// across probe families and refinement rounds; workers stay parked on a
/// condvar between jobs instead of being respawned.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` background workers.
    ///
    /// `threads == 0` is valid and useful: every [`WorkerPool::map`] then
    /// runs entirely on the calling thread, claiming indices in order —
    /// the deterministic single-participant schedule tests pin against.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hd-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // hd-lint: allow(no-panic) -- thread spawn fails only on OS resource exhaustion at pool construction
                    .expect("spawn hd-pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// The process-wide pool: `available_parallelism - 1` background
    /// workers (the caller of every `map` is the final participant), built
    /// on first use and alive for the rest of the process.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(cores.saturating_sub(1))
        })
    }

    /// Number of background worker threads (callers add one more
    /// participant per `map`).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(0), f(1), …, f(n-1)` across the pool plus the calling
    /// thread, with at most `max_workers` concurrent participants, and
    /// returns the results **in index order**.
    ///
    /// Tasks are claimed one index at a time from a shared counter
    /// (chunk-free stealing), so skewed per-task cost balances itself; the
    /// index-ordered reduction makes the result bit-identical for every
    /// `threads`/`max_workers` combination.
    ///
    /// # Panics
    ///
    /// Resumes the first panic raised by any task.
    pub fn map<T, F>(&self, n: usize, max_workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slot_ptr = SlotPtr(slots.as_mut_ptr());
        let run = move |i: usize| {
            let v = f(i);
            // Safety: index `i` is claimed exactly once, so this is the
            // only write to slot `i`, and the caller reads it only after
            // `finished == n` (see `SlotPtr`).
            // hd-lint: allow(no-unsafe) -- single writer per slot, reads after `done`
            unsafe { slot_ptr.write(i, v) };
        };
        let task = erase_task(&run);
        let job = Arc::new(Job {
            task,
            n,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(1), // the caller, admitted up front
            cap: max_workers.max(1),
            finished: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
        });
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(Arc::clone(&job));
            self.shared.work_cv.notify_all();
        }
        // The caller is always a participant: a zero-thread or busy pool
        // degrades to the serial loop instead of deadlocking.
        job.work();
        // hd-lint: allow(atomic-ordering) -- `active` only throttles admission (try_admit CAS); completion is signalled by `finished`/`done`, not this counter
        job.active.fetch_sub(1, Ordering::Relaxed);
        {
            let mut done = job.done.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.shared.remove(&job);
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            // hd-lint: allow(no-panic) -- every index 0..n was claimed and finished exactly once
            .map(|s| s.expect("task wrote its slot"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Store under the queue lock: a worker that just saw
        // `shutdown == false` still holds the lock until it parks on
        // `work_cv`, so it cannot miss this wakeup. Release pairs with the
        // Acquire load in `worker_loop`.
        {
            let _q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Erases the borrow lifetime of a job's task closure.
///
/// Safety: sound only because [`WorkerPool::map`] blocks until every
/// claimed index has finished before its frame (holding the closure)
/// unwinds, and claims past `n` never dereference the pointer.
fn erase_task<'a>(task: &'a (dyn Fn(usize) + Sync + 'a)) -> TaskPtr {
    // hd-lint: allow(no-unsafe) -- lifetime erasure justified in the fn docs
    TaskPtr(unsafe {
        std::mem::transmute::<&'a (dyn Fn(usize) + Sync + 'a), *const (dyn Fn(usize) + Sync)>(task)
    })
}

fn worker_loop(shared: &Shared) {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        // Acquire pairs with the Release store in `Drop` (made under this
        // same queue lock, so the flag cannot flip between this check and
        // the `work_cv` wait below).
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Reap fully-claimed jobs; their remaining stragglers run to
        // completion off the Arc clones held by active participants.
        // hd-lint: allow(atomic-ordering) -- reaping is best-effort housekeeping; a stale `next` keeps a job queued one extra round, never drops work
        q.retain(|j| j.next.load(Ordering::Relaxed) < j.n);
        let picked = q.iter().find_map(try_admit);
        match picked {
            Some(job) => {
                drop(q);
                stress_yield(SITE_STEAL, job.n as u64);
                job.work();
                // hd-lint: allow(atomic-ordering) -- admission throttle only; see the matching fetch_sub in `map`
                job.active.fetch_sub(1, Ordering::Relaxed);
                q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                // A slot under this job's cap may have opened for a parked
                // worker.
                shared.work_cv.notify_all();
            }
            None => {
                q = shared.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Atomically reserves a participation slot under `job.cap`.
fn try_admit(job: &Arc<Job>) -> Option<Arc<Job>> {
    // hd-lint: allow(atomic-ordering) -- `active` is a pure admission counter: the CAS guarantees the cap, and no data is published through it
    let mut cur = job.active.load(Ordering::Relaxed);
    loop {
        if cur >= job.cap {
            return None;
        }
        match job
            .active
            // hd-lint: allow(atomic-ordering) -- cap enforcement needs only atomicity of the CAS itself
            .compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return Some(Arc::clone(job)),
            Err(now) => cur = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_returns_results_in_index_order() {
        let pool = WorkerPool::new(3);
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let got = pool.map(n, 8, |i| i * 2);
            assert_eq!(got, (0..n).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_thread_pool_runs_on_the_caller_in_order() {
        let pool = WorkerPool::new(0);
        let order = Mutex::new(Vec::new());
        let got = pool.map(6, 4, |i| {
            order.lock().unwrap().push(i);
            i
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        // Single participant => claims strictly in index order.
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn max_workers_bounds_concurrency() {
        let pool = WorkerPool::new(8);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.map(64, 2, |_| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            active.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "cap 2 exceeded: peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let got = pool.map(10, 4, |i| i + round);
            assert_eq!(got, (0..10).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [0, 1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let got = pool.map(37, 64, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn task_panic_resumes_on_the_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(16, 4, |i| {
                if i == 5 {
                    panic!("boom at 5");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom at 5");
        // The pool survives the panic and accepts new jobs.
        assert_eq!(pool.map(3, 4, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn global_pool_is_usable() {
        let pool = WorkerPool::global();
        assert_eq!(pool.map(5, 4, |i| i * 3), vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4);
        pool.map(8, 8, |i| i);
        drop(pool); // must not hang
    }
}
