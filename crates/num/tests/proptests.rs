//! Property-based tests for the arbitrary-precision arithmetic.

use hd_num::{BigUint, LogCount};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let sum = &BigUint::from(a) + &BigUint::from(b);
        let expect = a as u128 + b as u128;
        prop_assert_eq!(sum.to_string(), expect.to_string());
    }

    #[test]
    fn mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let prod = &BigUint::from(a) * &BigUint::from(b);
        let expect = a as u128 * b as u128;
        prop_assert_eq!(prod.to_string(), expect.to_string());
    }

    #[test]
    fn mul_is_commutative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (BigUint::from(a), BigUint::from(b), BigUint::from(c));
        let left = &(&x * &y) * &z;
        let right = &x * &(&z * &y);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn add_is_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (BigUint::from(a), BigUint::from(b), BigUint::from(c));
        prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
    }

    #[test]
    fn div_rem_roundtrips(a in any::<u64>(), d in 1u32..u32::MAX) {
        let n = BigUint::from(a).mul_u64(0x1_0000_0001); // widen past 64 bits
        let mut q = n.clone();
        let r = q.div_rem_u32(d);
        prop_assert!(r < d);
        let back = &(&q * &BigUint::from(d as u64)) + &BigUint::from(r as u64);
        prop_assert_eq!(back, n);
    }

    #[test]
    fn decimal_roundtrips(a in any::<u64>(), b in any::<u64>()) {
        let n = &BigUint::from(a) * &BigUint::from(b);
        let parsed = BigUint::from_decimal(&n.to_string()).unwrap();
        prop_assert_eq!(parsed, n);
    }

    #[test]
    fn log10_tracks_decimal_length(a in 1u64..u64::MAX, exp in 0u32..12) {
        let n = BigUint::from(a).pow(exp + 1);
        let digits = n.to_string().len() as f64;
        let log = n.approx_log10();
        prop_assert!(log >= digits - 1.0 - 1e-6 && log < digits + 1e-6,
            "log10 {} vs {} digits", log, digits);
    }

    #[test]
    fn ordering_consistent_with_u128(a in any::<u64>(), b in any::<u64>()) {
        let cmp_big = BigUint::from(a).cmp(&BigUint::from(b));
        prop_assert_eq!(cmp_big, a.cmp(&b));
    }

    #[test]
    fn logcount_product_log_is_sum_of_logs(xs in prop::collection::vec(2u64..1_000_000, 1..10)) {
        let mut c = LogCount::one();
        let mut expect = 0.0f64;
        for &x in &xs {
            c.mul_count(x);
            expect += (x as f64).log10();
        }
        prop_assert!((c.log10() - expect).abs() < 1e-6);
    }

    #[test]
    fn pow_matches_repeated_multiplication(base in 1u64..1000, exp in 0u32..8) {
        let b = BigUint::from(base);
        let mut expect = BigUint::one();
        for _ in 0..exp {
            expect = &expect * &b;
        }
        prop_assert_eq!(b.pow(exp), expect);
    }
}
