//! A compact arbitrary-precision unsigned integer.
//!
//! Only the operations the HuffDuff solution-space accounting needs are
//! implemented: addition, subtraction (saturating at zero is *not* provided —
//! underflow panics), multiplication, small-divisor division, comparison,
//! decimal formatting, and a base-10 logarithm approximation.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul};

/// Base-2^32 little-endian arbitrary-precision unsigned integer.
///
/// The invariant is that `limbs` never has trailing zero limbs; zero is
/// represented by an empty limb vector.
///
/// # Examples
///
/// ```
/// use hd_num::BigUint;
///
/// let a = BigUint::from(123_456_789_u64);
/// let b = BigUint::from(987_654_321_u64);
/// assert_eq!((&a * &b).to_string(), "121932631112635269");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 32 + (32 - top.leading_zeros()),
        }
    }

    /// Adds `rhs` in place.
    pub fn add_assign(&mut self, rhs: &BigUint) {
        let mut carry: u64 = 0;
        let n = self.limbs.len().max(rhs.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let r = *rhs.limbs.get(i).unwrap_or(&0) as u64;
            let sum = self.limbs[i] as u64 + r + carry;
            self.limbs[i] = sum as u32;
            carry = sum >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Multiplies by a `u32` in place.
    pub fn mul_u32(&mut self, m: u32) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry: u64 = 0;
        for limb in &mut self.limbs {
            let prod = *limb as u64 * m as u64 + carry;
            *limb = prod as u32;
            carry = prod >> 32;
        }
        while carry != 0 {
            self.limbs.push(carry as u32);
            carry >>= 32;
        }
    }

    /// Multiplies by a `u64`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        self * &BigUint::from(m)
    }

    /// Divides in place by a `u32` divisor, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u32(&mut self, d: u32) -> u32 {
        assert!(d != 0, "division by zero");
        let mut rem: u64 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 32) | *limb as u64;
            *limb = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        rem as u32
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Approximate base-10 logarithm; returns negative infinity for zero.
    pub fn approx_log10(&self) -> f64 {
        match self.limbs.len() {
            0 => f64::NEG_INFINITY,
            1 => (self.limbs[0] as f64).log10(),
            n => {
                // Use the top two (or three) limbs for the mantissa.
                let hi = self.limbs[n - 1] as f64;
                let mid = self.limbs[n - 2] as f64;
                let lo = if n >= 3 {
                    self.limbs[n - 3] as f64
                } else {
                    0.0
                };
                let mantissa = hi + mid / 4294967296.0 + lo / (4294967296.0 * 4294967296.0);
                mantissa.log10() + (n as f64 - 1.0) * 32.0 * std::f64::consts::LOG10_2
            }
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string is empty or contains a
    /// non-digit character.
    pub fn from_decimal(s: &str) -> Result<BigUint, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut out = BigUint::zero();
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigUintError)?;
            out.mul_u32(10);
            out.add_assign(&BigUint::from(d as u64));
        }
        Ok(out)
    }
}

/// Error returned by [`BigUint::from_decimal`] on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal big-integer literal")
    }
}

impl std::error::Error for ParseBigUintError {}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        let lo = v as u32;
        let hi = (v >> 32) as u32;
        if hi != 0 {
            BigUint {
                limbs: vec![lo, hi],
            }
        } else if lo != 0 {
            BigUint { limbs: vec![lo] }
        } else {
            BigUint::zero()
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = out[idx] as u64 + a as u64 * b as u64 + carry;
                out[idx] = cur as u32;
                carry = cur >> 32;
            }
            let mut idx = i + rhs.limbs.len();
            while carry != 0 {
                let cur = out[idx] as u64 + carry;
                out[idx] = cur as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        BigUint::trim(out)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            chunks.push(cur.div_rem_u32(1_000_000_000));
        }
        let mut s = chunks.pop().unwrap_or_default().to_string();
        for chunk in chunks.into_iter().rev() {
            s.push_str(&format!("{:09}", chunk));
        }
        write!(f, "{}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 42, u32::MAX as u64, u32::MAX as u64 + 1, u64::MAX] {
            assert_eq!(BigUint::from(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn addition_with_carry() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(1u64);
        let sum = &a + &b;
        assert_eq!(sum.to_string(), "18446744073709551616");
        assert_eq!(sum.to_u64(), None);
    }

    #[test]
    fn multiplication_small() {
        let a = BigUint::from(123_456_789u64);
        let b = BigUint::from(987_654_321u64);
        assert_eq!((&a * &b).to_string(), "121932631112635269");
    }

    #[test]
    fn multiplication_by_zero() {
        let a = BigUint::from(u64::MAX);
        assert!((&a * &BigUint::zero()).is_zero());
        let mut b = a.clone();
        b.mul_u32(0);
        assert!(b.is_zero());
    }

    #[test]
    fn pow_of_ten() {
        let ten = BigUint::from(10u64);
        let n = ten.pow(96);
        assert_eq!(n.to_string().len(), 97);
        assert!((n.approx_log10() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn pow_zero_exponent() {
        assert_eq!(BigUint::from(7u64).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
    }

    #[test]
    fn div_rem() {
        let mut n = BigUint::from_decimal("123456789012345678901234567890").unwrap();
        let r = n.div_rem_u32(97);
        // Verified against arbitrary-precision arithmetic.
        let q = BigUint::from_decimal("1272750402189130710322005854").unwrap();
        assert_eq!(n, q);
        assert_eq!(
            &(&q * &BigUint::from(97u64)) + &BigUint::from(r as u64),
            BigUint::from_decimal("123456789012345678901234567890").unwrap()
        );
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(6u64);
        let c = BigUint::from(u64::MAX).pow(3);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn parse_errors() {
        assert!(BigUint::from_decimal("").is_err());
        assert!(BigUint::from_decimal("12a3").is_err());
        assert_eq!(
            BigUint::from_decimal("000123").unwrap(),
            BigUint::from(123u64)
        );
    }

    #[test]
    fn log10_of_zero_is_neg_inf() {
        assert!(BigUint::zero().approx_log10().is_infinite());
    }

    #[test]
    fn bits() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from(255u64).bits(), 8);
        assert_eq!(BigUint::from(256u64).bits(), 9);
        assert_eq!(BigUint::from(u64::MAX).bits(), 64);
    }
}
