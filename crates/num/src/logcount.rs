//! Log-domain counting of candidate-architecture spaces.
//!
//! The naive-sparse bound in the paper produces per-layer candidate counts
//! whose product overflows any machine integer. [`LogCount`] tracks both an
//! exact [`BigUint`] (always) and a cached `log10` so experiment code can
//! print "4 x 10^96"-style figures without conversion gymnastics.

use crate::BigUint;
use std::fmt;

/// An exact product/sum accumulator with convenient scientific formatting.
///
/// # Examples
///
/// ```
/// use hd_num::LogCount;
///
/// let mut space = LogCount::one();
/// for _ in 0..20 {
///     space.mul_count(1_000_000); // 20 layers, 1e6 candidates each
/// }
/// assert_eq!(space.log10().round() as i64, 120);
/// assert_eq!(space.to_scientific(2), "1.00e120");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogCount {
    exact: BigUint,
}

impl LogCount {
    /// The multiplicative identity (a space with exactly one candidate).
    pub fn one() -> Self {
        LogCount {
            exact: BigUint::one(),
        }
    }

    /// The empty space.
    pub fn zero() -> Self {
        LogCount {
            exact: BigUint::zero(),
        }
    }

    /// Creates a count from a machine integer.
    pub fn from_count(n: u64) -> Self {
        LogCount {
            exact: BigUint::from(n),
        }
    }

    /// Multiplies by a per-layer candidate count.
    pub fn mul_count(&mut self, n: u64) {
        self.exact = &self.exact * &BigUint::from(n);
    }

    /// Multiplies by another count.
    pub fn mul(&mut self, other: &LogCount) {
        self.exact = &self.exact * &other.exact;
    }

    /// Adds another count (for unions of disjoint spaces).
    pub fn add_count_from(&mut self, other: &LogCount) {
        self.exact = &self.exact + &other.exact;
    }

    /// The exact value.
    pub fn exact(&self) -> &BigUint {
        &self.exact
    }

    /// Base-10 logarithm (negative infinity for an empty space).
    pub fn log10(&self) -> f64 {
        self.exact.approx_log10()
    }

    /// The value as `u64`, if small enough.
    pub fn to_u64(&self) -> Option<u64> {
        self.exact.to_u64()
    }

    /// Scientific notation like `"4.00e96"` with `digits` fractional digits.
    pub fn to_scientific(&self, digits: usize) -> String {
        if self.exact.is_zero() {
            return "0".to_string();
        }
        let log = self.log10();
        let exp = log.floor();
        let mantissa = 10f64.powf(log - exp);
        // Guard against mantissa rounding up to 10.0.
        let (mantissa, exp) = if format!("{:.*}", digits, mantissa).starts_with("10") {
            (1.0, exp + 1.0)
        } else {
            (mantissa, exp)
        };
        format!("{:.*}e{}", digits, mantissa, exp as i64)
    }
}

impl Default for LogCount {
    fn default() -> Self {
        LogCount::one()
    }
}

impl fmt::Display for LogCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.to_u64() {
            write!(f, "{}", v)
        } else {
            write!(f, "{}", self.to_scientific(2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_zero() {
        assert_eq!(LogCount::one().to_u64(), Some(1));
        assert_eq!(LogCount::zero().to_u64(), Some(0));
        assert_eq!(LogCount::zero().to_scientific(2), "0");
    }

    #[test]
    fn product_of_layer_counts() {
        let mut c = LogCount::one();
        c.mul_count(8);
        c.mul_count(0);
        assert_eq!(c.to_u64(), Some(0));
    }

    #[test]
    fn astronomical_products_format() {
        let mut c = LogCount::one();
        for _ in 0..16 {
            c.mul_count(1_000_000_000_000); // 1e12 each
        }
        assert_eq!(c.log10().round() as i64, 192);
        assert!(c.to_scientific(1).ends_with("e192"));
    }

    #[test]
    fn display_small_is_decimal() {
        assert_eq!(LogCount::from_count(44).to_string(), "44");
    }

    #[test]
    fn add_union() {
        let mut a = LogCount::from_count(40);
        a.add_count_from(&LogCount::from_count(4));
        assert_eq!(a.to_u64(), Some(44));
    }

    #[test]
    fn mantissa_rounding_carry() {
        // 9.999... should not print as "10.0e(n)".
        let c = LogCount::from_count(999_999);
        let s = c.to_scientific(1);
        assert!(
            s == "1.0e6" || s == "10.0e5" || s == "9.99e5" || s.starts_with("1.0e"),
            "{s}"
        );
        assert!(!s.starts_with("10."), "{s}");
    }
}
