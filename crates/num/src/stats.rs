//! Running statistics and histograms for the experiment harness.

use std::fmt;

/// Welford-style running mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use hd_num::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (unbiased; 0 when fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.population_std_dev(),
            self.min,
            self.max
        )
    }
}

/// Fixed-width bucket histogram over `[lo, hi)`.
///
/// Out-of-range samples are clamped into the first/last bucket so totals are
/// never lost.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        let idx = ((x - self.lo) / w).floor();
        let idx = idx.clamp(0.0, (self.buckets.len() - 1) as f64) as usize;
        self.buckets[idx] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of samples at or above `threshold`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let bucket_lo = self.lo + i as f64 * w;
            if bucket_lo + w > threshold {
                acc += c;
            }
        }
        acc as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn known_variance() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0);
        h.push(100.0);
        h.push(5.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[2], 1);
    }

    #[test]
    fn histogram_fraction() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..10 {
            h.push(i as f64 / 10.0 + 0.05);
        }
        assert!((h.fraction_at_least(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
