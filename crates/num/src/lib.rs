//! Numeric substrate for the HuffDuff reproduction.
//!
//! Candidate-architecture counts in the paper reach magnitudes like
//! `4 x 10^96` (Table 1), far beyond `u128`. This crate provides:
//!
//! * [`BigUint`] — a small arbitrary-precision unsigned integer, sufficient
//!   for exact solution-space products,
//! * [`LogCount`] — a log10-domain counter that stays exact for small counts
//!   and degrades gracefully to floating point for astronomical ones,
//! * [`stats`] — running mean/variance and histogram helpers used by the
//!   experiment harness.
//!
//! # Examples
//!
//! ```
//! use hd_num::BigUint;
//!
//! let mut n = BigUint::from(1u64);
//! for _ in 0..96 {
//!     n = &n * &BigUint::from(10u64);
//! }
//! assert_eq!(n.approx_log10().round() as i64, 96);
//! ```

pub mod biguint;
pub mod logcount;
pub mod stats;

pub use biguint::BigUint;
pub use logcount::LogCount;
pub use stats::{Histogram, RunningStats};
