//! # HuffDuff — stealing pruned DNNs from sparse accelerators
//!
//! Umbrella crate for the HuffDuff reproduction (ASPLOS 2023). It re-exports
//! the workspace crates so examples and downstream users can depend on a
//! single crate:
//!
//! * [`num`] — big integers and solution-space counting,
//! * [`tensor`] — dense tensors, conv/pool/norm kernels, transfer codecs,
//! * [`dnn`] — the victim CNN framework (graph, training, pruning, zoo),
//! * [`accel`] — the sparse-accelerator + DRAM simulator (the victim device),
//! * [`trace`] — attacker-side DRAM-trace analysis,
//! * [`attack_crate`] (re-export of `huffduff_core`) — the attack itself
//!   plus the ReverseCNN baseline,
//! * [`adversarial`] — FGSM/BIM and black-box transfer evaluation.
//!
//! # Quickstart
//!
//! ```no_run
//! use huffduff::prelude::*;
//!
//! // Build a pruned victim and seal it inside the simulated device.
//! let victim = hd_dnn::zoo::vgg_s(10);
//! let mut params = hd_dnn::graph::Params::init(&victim, 42);
//! hd_dnn::prune::apply_sparsity_profile(&victim, &mut params, &hd_dnn::prune::paper_profile(&victim), 7);
//! let device = hd_accel::Device::new(victim, params, hd_accel::AccelConfig::eyeriss_v2());
//!
//! // Run the attack end to end.
//! let recovered = huffduff_core::attack::run(&device, &huffduff_core::attack::AttackConfig::default())
//!     .expect("attack completes");
//! println!("{}", recovered.report());
//! ```

pub use hd_accel as accel;
pub use hd_adversarial as adversarial;
pub use hd_dnn as dnn;
pub use hd_num as num;
pub use hd_obs as obs;
pub use hd_tensor as tensor;
pub use hd_trace as trace;
pub use huffduff_core as attack_crate;

/// Convenient glob-import surface for examples.
pub mod prelude {
    pub use hd_accel::{self, AccelConfig, Device};
    pub use hd_adversarial::{self};
    pub use hd_dnn::{self};
    pub use hd_num::{BigUint, LogCount};
    pub use hd_obs::{self};
    pub use hd_tensor::{self, Tensor3, Tensor4};
    pub use hd_trace::{self};
    pub use huffduff_core::{self};
}
