//! `huffduff` — command-line front end for the reproduction.
//!
//! ```text
//! huffduff steal  --model vgg-s|resnet18|vgg16 [--seed N]   run the full attack
//! huffduff trace  --model <m> [--seed N] --out trace.csv    dump one inference's bus trace
//! huffduff analyze --input trace.csv                        attacker-side trace analysis
//! huffduff demo                                             tiny end-to-end walkthrough
//! ```

use hd_accel::{AccelConfig, Device};
use hd_dnn::graph::Params;
use hd_tensor::Tensor3;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let get_opt = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = get_opt("--seed").and_then(|s| s.parse().ok()).unwrap_or(3);

    match cmd {
        "steal" => {
            let Some((device, name)) = build_victim(&get_opt("--model"), seed) else {
                return usage();
            };
            eprintln!("attacking a pruned {name} sealed in an Eyeriss-v2-like device…");
            let t0 = std::time::Instant::now();
            match huffduff_core::run(&device, &huffduff_core::AttackConfig::default()) {
                Ok(outcome) => {
                    println!("{}", outcome.report());
                    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("attack failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" => {
            let Some((device, name)) = build_victim(&get_opt("--model"), seed) else {
                return usage();
            };
            let Some(out) = get_opt("--out") else {
                eprintln!("trace requires --out <file.csv>");
                return ExitCode::FAILURE;
            };
            let shape = device.input_shape();
            let image = Tensor3::full(shape.c, shape.h, shape.w, 0.5);
            let trace = device.run(&image);
            match std::fs::File::create(&out).and_then(|f| trace.to_csv(f)) {
                Ok(()) => {
                    eprintln!("{name}: {} bus events written to {out}", trace.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("could not write {out}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "analyze" => {
            let Some(input) = get_opt("--input") else {
                eprintln!("analyze requires --input <file.csv>");
                return ExitCode::FAILURE;
            };
            let trace = match std::fs::File::open(&input)
                .map_err(hd_accel::trace_event::ParseTraceError::from)
                .and_then(|f| hd_accel::Trace::from_csv(BufReader::new(f)))
            {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("could not read {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match hd_trace::analyze(&trace) {
                Ok(analysis) => {
                    println!("{}", analysis.report());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("analysis failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "demo" => {
            let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
            let x = b.input();
            let x = b.conv(x, 8, 5, 1);
            let x = b.max_pool(x, 2);
            let x = b.conv(x, 16, 3, 1);
            let x = b.global_avg_pool(x);
            b.linear(x, 10);
            let net = b.build();
            let mut params = Params::init(&net, seed);
            let profile = hd_dnn::prune::SparsityProfile {
                targets: net
                    .weighted_nodes()
                    .iter()
                    .enumerate()
                    .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.75 }))
                    .collect(),
            };
            hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, seed ^ 1);
            let device = Device::new(net, params, AccelConfig::eyeriss_v2());
            let cfg = huffduff_core::AttackConfig {
                prober: huffduff_core::ProberConfig {
                    shifts: 12,
                    max_probes: 8,
                    stable_probes: 2,
                    ..Default::default()
                },
                classes: 10,
                max_k: 256,
                ..Default::default()
            };
            match huffduff_core::run(&device, &cfg) {
                Ok(outcome) => {
                    println!("{}", outcome.report());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("demo attack failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn build_victim(model: &Option<String>, seed: u64) -> Option<(Device, &'static str)> {
    let (net, name) = match model.as_deref() {
        Some("vgg-s") | Some("vgg_s") => (hd_dnn::zoo::vgg_s(10), "VGG-S"),
        Some("resnet18") | Some("resnet-18") => (hd_dnn::zoo::resnet18(10), "ResNet-18"),
        Some("vgg16") | Some("vgg-16") => (hd_dnn::zoo::vgg16(10), "VGG-16"),
        _ => return None,
    };
    let mut params = Params::init(&net, seed);
    let profile = hd_dnn::prune::paper_profile(&net);
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, seed ^ 0xBEEF);
    Some((Device::new(net, params, AccelConfig::eyeriss_v2()), name))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: huffduff <steal|trace|analyze|demo> [--model vgg-s|resnet18|vgg16] [--seed N] [--out f] [--input f]"
    );
    ExitCode::FAILURE
}
