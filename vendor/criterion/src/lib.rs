//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates.io mirror, so this workspace
//! vendors a minimal wall-clock harness exposing the criterion API surface
//! its benches use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`] (the `name`/`config`/`targets` form) and
//! [`criterion_main!`]. It reports min / mean / max per-iteration time from
//! `sample_size` timed samples after one warm-up sample — no statistical
//! machinery, but comparable run-over-run on an idle machine.

use std::time::{Duration, Instant};

/// Re-export mirror of `criterion::black_box` (std implementation).
pub use std::hint::black_box;

/// Benchmark driver: configure with builder methods, then run
/// [`Criterion::bench_function`] per benchmark.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Populated by `--save-baseline`-style CLI args in real criterion;
    /// accepted and ignored here.
    _filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            _filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up sample: populates caches and amortises lazy setup.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("{id:<40} no samples");
            return self;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        self
    }

    /// Runs the CLI entry point (arguments are accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to the closure given to [`Criterion::bench_function`]; call
/// [`Bencher::iter`] with the routine under test.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One timing sample = one routine call; sample_size in Criterion
        // controls repetition. Matches real criterion's per-iteration model
        // closely enough for the coarse timings recorded here.
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group; supports both the bare-targets and the
/// `name`/`config`/`targets` forms used by this workspace.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn group_runs_targets() {
        benches();
    }

    #[test]
    fn bencher_accumulates() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.iters, 2);
    }
}
