//! Vendored stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment cannot reach a crates.io mirror, so this workspace
//! vendors the small slice of the `rand` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform range sampling
//! ([`Rng::gen_range`]), Bernoulli draws ([`Rng::gen_bool`]), and in-place
//! slice shuffling ([`seq::SliceRandom::shuffle`]).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream's ChaCha12-based `StdRng`, but just as deterministic:
//! every draw is a pure function of the seed, on every platform. Nothing in
//! this workspace depends on matching upstream's exact stream, only on
//! reproducibility.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// `StdRng`; same guarantees, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Uniform sampling over ranges.

    pub mod uniform {
        //! The `SampleRange` machinery backing [`crate::Rng::gen_range`].

        use crate::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// Ranges that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Widening sampling helpers per primitive type.
        pub trait SampleUniform: Sized {
            /// Uniform draw from `[lo, hi)`.
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
            /// Uniform draw from `[lo, hi]`.
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        impl<T: SampleUniform + PartialOrd + Copy + core::fmt::Debug> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy + core::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo:?}..={hi:?}");
                T::sample_inclusive(lo, hi, rng)
            }
        }

        macro_rules! impl_uniform_int {
            ($($ty:ty => $wide:ty),* $(,)?) => {$(
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                        // Modulo bias is < span / 2^64: negligible for the
                        // simulation spans used here (all far below 2^32).
                        let draw = rng.next_u64() % span;
                        ((lo as $wide).wrapping_add(draw as $wide)) as $ty
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $ty;
                        }
                        let draw = rng.next_u64() % (span + 1);
                        ((lo as $wide).wrapping_add(draw as $wide)) as $ty
                    }
                }
            )*};
        }

        impl_uniform_int!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
        );

        macro_rules! impl_uniform_float {
            ($($ty:ty),*) => {$(
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        let v = lo as f64 + unit * (hi as f64 - lo as f64);
                        // Floating rounding can land exactly on `hi`; fold it
                        // back inside the half-open interval.
                        if v as $ty >= hi { lo } else { v as $ty }
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                        (lo as f64 + unit * (hi as f64 - lo as f64)) as $ty
                    }
                }
            )*};
        }

        impl_uniform_float!(f32, f64);
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use crate::{Rng, RngCore};

    /// In-place random permutations and element selection for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(0.5..3.0);
            assert!((0.5..3.0).contains(&v), "{v}");
            let i: i32 = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&i), "{i}");
            let u: usize = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_estimates_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
