//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates.io mirror, so this workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro over
//! named-argument strategies, range / [`Just`] / [`any`] / [`prop_oneof!`] /
//! `collection::vec` strategies, and the `prop_assert*` / [`prop_assume!`]
//! macros. Shrinking is not implemented — a failing case panics with the
//! generated inputs printed, which is enough to reproduce deterministically
//! (the per-test RNG stream is a pure function of the test name).

pub mod test_runner {
    //! Test configuration and the deterministic per-test RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic RNG whose stream depends only on the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Creates the RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::distributions::uniform::SampleUniform;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from the test RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: SampleUniform + PartialOrd + Copy + Debug> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.0.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy + Debug> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.0.gen_range(self.clone())
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter mapping generated values through a function
    /// (`strategy.prop_map(f)`).
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
        type Value = W;
        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_map` as an extension method on every strategy (mirrors the
    /// real proptest's provided trait method).
    pub trait StrategyExt: Strategy + Sized {
        /// Maps generated values through `f`.
        fn prop_map<W, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + Sized> StrategyExt for S {}

    /// Object-safe strategy view used by [`Union`] (`prop_oneof!`).
    pub trait DynStrategy<V> {
        /// Draws one value through the trait object.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice among several strategies with one value type.
    pub struct Union<V> {
        options: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// Builds the union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.0.gen_range(0..self.options.len());
            self.options[idx].generate_dyn(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.0.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.gen_bool(0.5)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.gen_range(-1.0e6_f32..1.0e6)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.gen_range(-1.0e9_f64..1.0e9)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Bias toward printable ASCII (where most parser edge cases
            // live) but keep the full scalar-value domain reachable.
            if rng.0.gen_bool(0.8) {
                rng.0.gen_range(0x20u8..0x7f) as char
            } else {
                char::from_u32(rng.0.gen_range(0u32..0x11_0000)).unwrap_or('\u{FFFD}')
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.0.gen_range(0usize..64);
            (0..len)
                .map(|_| {
                    // Sprinkle in newlines so line-based consumers get
                    // multi-line inputs.
                    if rng.0.gen_bool(0.05) {
                        '\n'
                    } else {
                        char::arbitrary(rng)
                    }
                })
                .collect()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Accepted element-count specifications for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors of `elem` values with a length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in 0..10usize) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __inputs = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?}, ",)+ ""),
                    __case, $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::option::Option<()> {
                        $body
                        ::std::option::Option::Some(())
                    },
                ));
                match outcome {
                    Ok(_) => {}
                    Err(payload) => {
                        eprintln!("proptest failure in {} ({})", stringify!($name), __inputs);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Asserts inside a property body, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::option::Option::None;
        }
    };
}

/// Uniform choice among strategies: `prop_oneof![Just(1), Just(3)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, StrategyExt};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the `prop` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5f32..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y), "y = {y}");
        }

        #[test]
        fn oneof_picks_only_listed(k in prop_oneof![Just(1usize), Just(3usize), Just(5usize)]) {
            prop_assert!(k == 1usize || k == 3usize || k == 5usize);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..4, 4..12)) {
            prop_assert!((4..12).contains(&v.len()));
            for x in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_bool_varies(a in any::<bool>(), b in any::<u64>()) {
            // Not much to assert beyond type-level success.
            let _ = (a, b);
            prop_assert!(true);
        }
    }
}
