//! End-to-end "adapt the stolen model" flow: attack a trained mini victim,
//! rebuild a sampled candidate, and retrain it on the attacker's own data
//! to the victim's sparse footprint (the Figure-4 use case, at toy scale).
//!
//! ```text
//! cargo run --release --example train_candidate
//! ```

use hd_dnn::data::SyntheticImages;
use hd_dnn::train::{accuracy, normalize_init, train, TrainConfig};
use huffduff::prelude::*;

fn main() {
    // The victim owner's private training data and model.
    let mut gen = SyntheticImages::cifar_like(21);
    gen.noise = 0.25;
    let train_set = gen.dataset(96, 0);
    let test_set = gen.dataset(48, 500_000);
    let calib: Vec<Tensor3> = train_set.iter().take(4).map(|(x, _)| x.clone()).collect();

    let victim_net = hd_dnn::zoo::vgg_s_scaled(10, 0.0625);
    let mut victim_params = hd_dnn::graph::Params::init(&victim_net, 1);
    normalize_init(&victim_net, &mut victim_params, &calib);
    let cfg = TrainConfig {
        epochs: 5,
        lr: 0.001,
        momentum: 0.9,
        weight_decay: 1e-4,
        lr_decay: 1.0,
    };
    train(&victim_net, &mut victim_params, &train_set, &cfg, None);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: victim_net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.75 }))
            .collect(),
    };
    let mask = hd_dnn::prune::magnitude_prune_profile(&victim_net, &mut victim_params, &profile);
    train(
        &victim_net,
        &mut victim_params,
        &train_set,
        &TrainConfig { epochs: 3, ..cfg },
        Some(&mask),
    );
    let victim_acc = accuracy(&victim_net, &victim_params, &test_set);
    let footprint = victim_net.sparse_weight_count(&victim_params);
    println!("victim accuracy {victim_acc:.2} at {footprint} surviving weights");

    // The attacker steals the architecture through the device side channel…
    let device = Device::new(victim_net, victim_params, AccelConfig::eyeriss_v2());
    let attack_cfg = huffduff_core::AttackConfig {
        prober: huffduff_core::ProberConfig {
            shifts: 16,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        },
        classes: 10,
        max_k: 256,
        ..Default::default()
    };
    let outcome = huffduff_core::run(&device, &attack_cfg).expect("attack succeeds");
    let space = outcome.space.as_ref().expect("full channel finalizes");
    println!("attack found {} candidate architectures", space.count());

    // …then retrains one candidate on their *own* data at iso footprint.
    let arch = &space.sample(1, 9)[0];
    let candidate = space.build_network(arch);
    let mut cand_params = hd_dnn::graph::Params::init(&candidate, 99);
    normalize_init(&candidate, &mut cand_params, &calib);
    train(&candidate, &mut cand_params, &train_set, &cfg, None);
    let dense = candidate.dense_weight_count(&cand_params);
    let sparsity = (1.0 - footprint as f64 / dense as f64).clamp(0.0, 0.995);
    let mask = hd_dnn::prune::magnitude_prune_global(&candidate, &cand_params, sparsity, 4);
    mask.apply(&mut cand_params);
    train(
        &candidate,
        &mut cand_params,
        &train_set,
        &TrainConfig { epochs: 3, ..cfg },
        Some(&mask),
    );
    let cand_acc = accuracy(&candidate, &cand_params, &test_set);
    println!(
        "candidate (k1 = {}) accuracy {cand_acc:.2} at {} surviving weights",
        arch.k1,
        candidate.sparse_weight_count(&cand_params)
    );
    println!("victim {victim_acc:.2} vs stolen-architecture clone {cand_acc:.2} — the paper's Fig. 4 effect at toy scale");
}
