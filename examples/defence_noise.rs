//! Defence sketch from paper §9.2: the victim randomly leaves zeros
//! uncompressed so output transfer volumes carry per-run noise, and the
//! boundary-effect patterns blur.
//!
//! This example wraps the device in a noisy probe target and shows how the
//! prober's geometry recovery degrades as the noise amplitude grows — and
//! what the defence costs in extra transfer volume.
//!
//! ```text
//! cargo run --release --example defence_noise                 # the sweep
//! cargo run --release --example defence_noise -- -o obs.json  # + telemetry
//! cargo run --release --example defence_noise -- --help       # all options
//! ```
//!
//! The sweep itself always probes serially (the injected noise stream is
//! consumed in probe order), so `-j` is accepted but ignored here.

#[path = "common/cli.rs"]
mod cli;

use huffduff::prelude::*;
use huffduff_core::eval::score_geometry;
use huffduff_core::prober::{probe, ProberConfig};
use huffduff_core::{Observation, ObservationModel, ObserveError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// A device whose output tensors are padded with a random number of
/// uncompressed zeros per run (volume-channel noise injection).
///
/// `ObservationModel: Sync` (the prober may fan probes across threads), so
/// the noise RNG sits behind a `Mutex` rather than a `RefCell`. This model
/// is intentionally schedule-dependent — the example probes it serially.
struct NoisyDevice {
    inner: Device,
    noise_bytes: u64,
    rng: Mutex<StdRng>,
}

impl ObservationModel for NoisyDevice {
    fn input_shape(&self) -> hd_tensor::Shape3 {
        self.inner.input_shape()
    }

    fn observe(&self, image: &Tensor3) -> Result<Observation, ObserveError> {
        let mut trace = self.inner.run(image);
        if self.noise_bytes > 0 {
            let mut rng = self.rng.lock().expect("noise RNG lock");
            for i in 0..trace.events.len() {
                let e = trace.events[i];
                if e.kind != hd_accel::AccessKind::Write {
                    continue;
                }
                let stream_ends = trace.events.get(i + 1).is_none_or(|n| {
                    n.kind != hd_accel::AccessKind::Write || n.addr != e.addr + e.bytes
                });
                if stream_ends {
                    trace.events[i].bytes += rng.gen_range(0..=self.noise_bytes);
                }
            }
        }
        Ok(Observation::from_trace(hd_trace::analyze(&trace)?))
    }
}

fn main() {
    let args = cli::CliArgs::parse("defence_noise");

    // A small victim so the sweep stays quick.
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 16, 3, 1);
    b.conv(x, 16, 3, 1);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 4);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.75 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 5);

    let accel = AccelConfig::builder()
        .conv_backend(args.backend_or_default())
        .build()
        .expect("valid accelerator config");

    cli::obs_begin(&args);
    println!("noise(B)  probes  geometry-exact");
    for noise in [0u64, 2, 8, 32, 128] {
        let target = NoisyDevice {
            inner: Device::new(net.clone(), params.clone(), accel.clone()),
            noise_bytes: noise,
            rng: Mutex::new(StdRng::seed_from_u64(noise ^ 0xD1CE)),
        };
        let cfg = ProberConfig::builder()
            .shifts(12)
            .max_probes(12)
            .stable_probes(3)
            .kernels(vec![1, 3, 5])
            .strides(vec![1, 2])
            .pools(vec![2, 3])
            .seed(31)
            // The injected noise stream is consumed in probe order, so
            // keep this target on the serial path for reproducibility.
            .parallelism(Some(1))
            .build()
            .expect("valid prober config");
        let res = probe(&target, &cfg).expect("probe runs");
        let score = score_geometry(&net, &res);
        println!(
            "{noise:>8}  {:>6}  {}/{}",
            res.probes_used, score.correct, score.total
        );
    }
    cli::obs_finish(&args);
    println!();
    println!("volume noise violates the one-sided-error assumption: patterns");
    println!("that should merge get split, so more probes make things worse,");
    println!("not better. The paper (§9.2) notes a real defence would need to");
    println!("randomize consistently against repeated trials — and pays DRAM");
    println!("bandwidth for every padded zero.");
}
