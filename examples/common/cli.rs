//! Shared command-line handling for the example binaries.
//!
//! Included via `#[path = "common/cli.rs"] mod cli;` (files under
//! `examples/common/` are not themselves example targets). Every example
//! accepts the same surface:
//!
//! ```text
//! -j, --parallelism N       prober worker threads (default: all cores)
//! -b, --backend KIND        conv backend: direct | gemm | sparse
//! -c, --channel KIND        observation channel: full | trace | timing | gemm
//! -p, --prune MODE          victim pruning: unstructured | N:M (e.g. 2:4)
//!                           | structured[:KEEP_FRAC]
//! -q, --quantize            deploy the victim as INT8 (post-training
//!                           quantized, BN folded) instead of f32
//! -o, --obs PATH            enable telemetry; write JSON to PATH and a
//!                           Chrome trace next to it (.trace.json)
//! -h, --help                usage
//! ```
//!
//! Unknown flags are errors (exit code 2), not silently ignored — the old
//! per-example parsers scanned for known flags and dropped the rest, which
//! made typos like `--paralellism 4` run the slow default silently.

// Each example includes this module but uses a different subset of it.
#![allow(dead_code)]

use hd_tensor::ConvBackend;
use huffduff_core::ChannelKind;
use std::path::{Path, PathBuf};

/// Parsed common options.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CliArgs {
    /// `-j N`: prober worker threads (`None` = all cores).
    pub parallelism: Option<usize>,
    /// `-b KIND`: simulator conv backend (`None` = crate default).
    pub backend: Option<ConvBackend>,
    /// `-c KIND`: the observation channel the attacker reads.
    pub channel: ChannelKind,
    /// `-p MODE`: how the victim is pruned before the attack.
    pub prune: PruneArg,
    /// `-o PATH`: telemetry JSON output path; presence enables telemetry.
    pub obs_out: Option<PathBuf>,
    /// `-q`: deploy the victim INT8-quantized (PTQ with BN folding).
    pub quantized: bool,
}

/// Victim pruning mode selected with `-p`/`--prune`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum PruneArg {
    /// Magnitude pruning to the paper's sparsity profile (the default).
    #[default]
    Unstructured,
    /// N:M fine-grained sparsity along the input-channel axis.
    Nm {
        /// Kept weights per group.
        n: usize,
        /// Group size.
        m: usize,
    },
    /// Structured channel removal (shapes physically shrink).
    Structured {
        /// Fraction of each prunable class's channels kept.
        keep_frac: f64,
    },
}

impl PruneArg {
    /// Parses `unstructured`, `N:M` (e.g. `2:4`), `structured`, or
    /// `structured:FRAC` (e.g. `structured:0.6`).
    pub fn parse(v: &str) -> Result<PruneArg, String> {
        if v == "unstructured" {
            return Ok(PruneArg::Unstructured);
        }
        if v == "structured" {
            return Ok(PruneArg::Structured { keep_frac: 0.5 });
        }
        if let Some(frac) = v.strip_prefix("structured:") {
            let keep_frac: f64 = frac
                .parse()
                .map_err(|_| format!("invalid keep fraction {frac:?}"))?;
            if !(keep_frac > 0.0 && keep_frac <= 1.0) {
                return Err(format!("keep fraction {keep_frac} not in (0, 1]"));
            }
            return Ok(PruneArg::Structured { keep_frac });
        }
        if let Some((n, m)) = v.split_once(':') {
            let (n, m) = (
                n.parse::<usize>()
                    .map_err(|_| format!("invalid N in {v:?}"))?,
                m.parse::<usize>()
                    .map_err(|_| format!("invalid M in {v:?}"))?,
            );
            if n == 0 || n > m {
                return Err(format!("N:M needs 1 <= N <= M, got {n}:{m}"));
            }
            return Ok(PruneArg::Nm { n, m });
        }
        Err(format!(
            "unknown pruning mode {v:?} (expected unstructured, N:M, or structured[:FRAC])"
        ))
    }

    /// Human-readable label for banners.
    pub fn label(&self) -> String {
        match self {
            PruneArg::Unstructured => "unstructured (paper profile)".to_string(),
            PruneArg::Nm { n, m } => format!("{n}:{m} fine-grained"),
            PruneArg::Structured { keep_frac } => {
                format!("structured (keep {:.0}% of channels)", keep_frac * 100.0)
            }
        }
    }
}

/// Applies the selected pruning mode to a freshly-initialized victim,
/// returning the (possibly restructured) network and parameters.
/// Unstructured mode uses the paper's sparsity profile with `seed`;
/// structured mode removes channels first and then magnitude-prunes the
/// survivors with the same profile shape.
pub fn prune_victim(
    net: hd_dnn::graph::Network,
    mut params: hd_dnn::graph::Params,
    mode: PruneArg,
    seed: u64,
) -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    match mode {
        PruneArg::Unstructured => {
            let profile = hd_dnn::prune::paper_profile(&net);
            hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, seed);
            (net, params)
        }
        PruneArg::Nm { n, m } => {
            hd_dnn::prune::nm_prune(&net, &mut params, n, m);
            (net, params)
        }
        PruneArg::Structured { keep_frac } => {
            let r = hd_dnn::prune::structured_prune(
                &net,
                &params,
                &hd_dnn::prune::StructuredCfg {
                    keep_frac,
                    min_keep: 2,
                },
            );
            let (net, mut params) = (r.net, r.params);
            let profile = hd_dnn::prune::paper_profile(&net);
            hd_dnn::prune::magnitude_prune_profile(&net, &mut params, &profile);
            (net, params)
        }
    }
}

impl CliArgs {
    /// The backend to use (explicit flag or the default).
    pub fn backend_or_default(&self) -> ConvBackend {
        self.backend.unwrap_or_default()
    }

    /// The PE-array precision selected by `-q`.
    pub fn precision(&self) -> hd_accel::Precision {
        if self.quantized {
            hd_accel::Precision::Int8
        } else {
            hd_accel::Precision::F32
        }
    }

    /// Whether telemetry collection was requested.
    pub fn telemetry(&self) -> bool {
        self.obs_out.is_some()
    }

    /// Parses `std::env::args`, printing usage and exiting on `--help`
    /// (code 0) or any parse error (code 2).
    pub fn parse(example: &str) -> CliArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_parse(&argv) {
            Ok(Parsed::Args(args)) => args,
            Ok(Parsed::HelpRequested) => {
                println!("{}", usage(example));
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage(example));
                std::process::exit(2);
            }
        }
    }

    /// Pure parser over an argument slice (no process exit, testable).
    pub fn try_parse(argv: &[String]) -> Result<Parsed, String> {
        let mut args = CliArgs::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value_for = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "-h" | "--help" => return Ok(Parsed::HelpRequested),
                "-j" | "--parallelism" => {
                    let v = value_for(flag)?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid worker count {v:?}"))?;
                    if n == 0 {
                        return Err("worker count must be at least 1".into());
                    }
                    args.parallelism = Some(n);
                }
                "-b" | "--backend" => {
                    let v = value_for(flag)?;
                    let backend = ConvBackend::parse(&v).ok_or_else(|| {
                        format!("unknown backend {v:?} (expected direct, gemm, or sparse)")
                    })?;
                    args.backend = Some(backend);
                }
                "-c" | "--channel" => {
                    let v = value_for(flag)?;
                    args.channel = ChannelKind::parse(&v).ok_or_else(|| {
                        format!("unknown channel {v:?} (expected full, trace, timing, or gemm)")
                    })?;
                }
                "-p" | "--prune" => {
                    args.prune = PruneArg::parse(&value_for(flag)?)?;
                }
                "-o" | "--obs" => {
                    args.obs_out = Some(PathBuf::from(value_for(flag)?));
                }
                "-q" | "--quantize" => {
                    args.quantized = true;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(Parsed::Args(args))
    }
}

/// Outcome of a successful parse.
#[derive(Clone, Debug, PartialEq)]
pub enum Parsed {
    /// Normal options.
    Args(CliArgs),
    /// `-h`/`--help` was present; the caller should print usage and stop.
    HelpRequested,
}

fn usage(example: &str) -> String {
    format!(
        "usage: cargo run --release --example {example} -- [options]\n\
         \n\
         options:\n\
         \x20 -j, --parallelism N   prober worker threads (default: all cores)\n\
         \x20 -b, --backend KIND    conv backend: direct | gemm | sparse (default: gemm)\n\
         \x20 -c, --channel KIND    observation channel the attacker reads: full | trace |\n\
         \x20                       timing | gemm (default: full; gemm needs the gemm\n\
         \x20                       backend)\n\
         \x20 -p, --prune MODE      victim pruning: unstructured | N:M (e.g. 2:4) |\n\
         \x20                       structured[:KEEP_FRAC] (default: unstructured)\n\
         \x20 -o, --obs PATH        enable telemetry; write summary JSON to PATH and a\n\
         \x20                       Chrome trace (load in chrome://tracing) next to it\n\
         \x20 -q, --quantize        deploy the victim as INT8 (PTQ, BN folded) instead\n\
         \x20                       of f32\n\
         \x20 -h, --help            show this help"
    )
}

/// Enables and clears telemetry if `-o` was given. Call before the workload.
pub fn obs_begin(args: &CliArgs) {
    if args.telemetry() {
        hd_obs::reset();
        hd_obs::set_enabled(true);
    }
}

/// Disables telemetry and writes the three exports if `-o` was given:
/// the summary table to stdout, stable-schema JSON to the `-o` path, and a
/// Chrome trace next to it. Call after the workload.
pub fn obs_finish(args: &CliArgs) {
    let Some(path) = &args.obs_out else {
        return;
    };
    hd_obs::set_enabled(false);
    let snap = hd_obs::snapshot();
    print!("{}", snap.summary_table());
    write_or_die(path, &snap.to_json());
    let trace_path = chrome_trace_path(path);
    write_or_die(&trace_path, &snap.to_chrome_trace());
    println!(
        "telemetry: JSON -> {}, Chrome trace -> {}",
        path.display(),
        trace_path.display()
    );
}

/// `obs.json` -> `obs.trace.json`; a path without a `.json` extension gets
/// `.trace.json` appended.
pub fn chrome_trace_path(json_path: &Path) -> PathBuf {
    let name = json_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let stem = name.strip_suffix(".json").unwrap_or(&name);
    json_path.with_file_name(format!("{stem}.trace.json"))
}

fn write_or_die(path: &Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}
