//! Quickstart: seal a pruned CNN inside a simulated sparse accelerator,
//! then steal its architecture from the DRAM bus alone.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use huffduff::prelude::*;

fn main() {
    // 1. The victim: a small pruned CNN the attacker never sees directly.
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 16, 3, 1);
    let x = b.global_avg_pool(x);
    b.linear(x, 10);
    let net = b.build();

    let mut params = hd_dnn::graph::Params::init(&net, 7);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.75 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 8);

    println!("victim architecture (hidden from the attacker):\n{net}");

    // 2. Seal it in an Eyeriss-v2-like device. From here on, the attacker
    //    only sees DRAM bus events: time, address, direction, burst size.
    let device = Device::new(net, params, AccelConfig::eyeriss_v2());

    // 3. A single inference, as the bus probe sees it.
    let image = Tensor3::full(3, 16, 16, 0.5);
    let trace = device.run(&image);
    println!(
        "one inference = {} bus events ({} B read, {} B written)",
        trace.len(),
        trace.total_bytes(hd_accel::AccessKind::Read),
        trace.total_bytes(hd_accel::AccessKind::Write),
    );

    // 4. Attacker-side reconstruction of tensors / layers / dataflow.
    let analysis = hd_trace::analyze(&trace).expect("trace analyzes");
    println!("\nattacker's view of the run:\n{}", analysis.report());

    // 5. The full HuffDuff attack: boundary-effect probing + the
    //    psum-encoding timing channel + first-layer sparsity bound.
    let cfg = huffduff_core::AttackConfig {
        prober: huffduff_core::ProberConfig {
            shifts: 12,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        },
        classes: 10,
        max_k: 256,
        ..Default::default()
    };
    let outcome = huffduff_core::run(&device, &cfg).expect("attack succeeds");
    println!("{}", outcome.report());

    // 6. Sample candidate architectures and rebuild them as trainable nets.
    let space = outcome.space.as_ref().expect("full channel finalizes");
    for arch in space.sample(3, 42) {
        let candidate = space.build_network(&arch);
        println!(
            "candidate k1={}: {} nodes, ready for retraining",
            arch.k1,
            candidate.len()
        );
    }
}
