//! Steal the full-size CIFAR ResNet-18 victim, including its residual
//! dataflow graph, and show the ambiguity the channel genuinely leaves.
//!
//! ResNet-18 exercises the parts VGG-S does not: residual joins (the
//! attacker recovers the two-input dataflow from RAW dependencies),
//! stride-2 stage transitions, 1x1 projection shortcuts, and global
//! average pooling. At saturated deep layers some geometries are
//! *iso-footprint equivalent* — indistinguishable from any volume/timing
//! observable — and the prober reports them in `alternatives`.
//!
//! ```text
//! cargo run --release --example steal_resnet                 # all cores, GEMM
//! cargo run --release --example steal_resnet -- -j 1         # serial baseline
//! cargo run --release --example steal_resnet -- -b direct    # direct conv loop
//! cargo run --release --example steal_resnet -- -o obs.json  # telemetry export
//! cargo run --release --example steal_resnet -- -p 2:4       # N:M sparse victim
//! cargo run --release --example steal_resnet -- -c trace     # volumes, no timing
//! cargo run --release --example steal_resnet -- --help       # all options
//! ```
//!
//! `-c` restricts the observation channel (`full`, `trace`, `timing`, or
//! `gemm`); the report shows which attack stages the restriction costs.
//!
//! `-p structured[:FRAC]` runs the channel-removal pass first (residual
//! adds keep both operands on one channel set), so the attack reads the
//! physically shrunken widths off the device.
//!
//! `-j N` caps the prober's worker threads and `-b` selects the simulator's
//! convolution backend; any combination produces a bit-identical result
//! (the executor and all backends are deterministic), only wall-clock
//! changes. `-o obs.json` records hd-obs telemetry into JSON plus a Chrome
//! trace without affecting the outcome.

#[path = "common/cli.rs"]
mod cli;

use huffduff::prelude::*;
use huffduff_core::eval::{expected_kinds, score_geometry};

fn main() {
    let args = cli::CliArgs::parse("steal_resnet");

    let net = hd_dnn::zoo::resnet18(10);
    let params = hd_dnn::graph::Params::init(&net, 4);
    let (net, params) = cli::prune_victim(net, params, args.prune, 5);
    println!(
        "victim: CIFAR ResNet-18 ({}), {} conv layers, {} weights after pruning",
        args.prune.label(),
        net.conv_nodes().len(),
        net.sparse_weight_count(&params)
    );

    let backend = args.backend_or_default();
    let accel = AccelConfig::builder()
        .conv_backend(backend)
        .precision(args.precision())
        .build()
        .expect("valid accelerator config");
    if args.quantized {
        println!("precision: INT8 (post-training quantized, BN folded)");
    }
    let device = Device::new(net.clone(), params, accel);

    let cfg = huffduff_core::AttackConfig::builder()
        .prober(
            huffduff_core::ProberConfig::builder()
                .parallelism(args.parallelism)
                .build()
                .expect("valid prober config"),
        )
        .build()
        .expect("valid attack config");
    println!(
        "prober workers: {} ({} probe inferences fan out per family), conv backend: {}, \
         observation channel: {}",
        cfg.prober.effective_parallelism(cfg.prober.shifts),
        cfg.prober.shifts,
        backend,
        args.channel
    );

    cli::obs_begin(&args);
    let t0 = std::time::Instant::now();
    let model = args.channel.model(&device);
    let outcome = huffduff_core::run(model.as_ref(), &cfg).expect("attack runs");
    println!("attack completed in {:.1}s", t0.elapsed().as_secs_f64());
    cli::obs_finish(&args);
    println!("{}", outcome.prober.report());

    // Point-estimate accuracy and candidate-set coverage.
    let score = score_geometry(&net, &outcome.prober);
    let expected = expected_kinds(&net);
    let covered = expected
        .iter()
        .zip(&outcome.prober.layers)
        .filter(|(e, l)| l.kind == **e || l.alternatives.contains(e))
        .count();
    println!(
        "geometry: {}/{} exact point estimates, {}/{} covered by candidate sets",
        score.correct,
        score.total,
        covered,
        expected.len()
    );
    for (idx, want, got) in &score.mismatches {
        let alts = outcome
            .prober
            .layers
            .get(*idx)
            .map(|l| {
                l.alternatives
                    .iter()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        println!("  layer {idx}: true {want}, point estimate {got} (candidates: {alts})");
    }

    match &outcome.space {
        Some(space) => println!(
            "\nsolution space: {} candidates, k1 range [{}, {}] (paper: 44, [30, 73])",
            space.count(),
            space.k1_candidates.first().unwrap_or(&0),
            space.k1_candidates.last().unwrap_or(&0),
        ),
        None => println!(
            "\nsolution space: not recoverable on the {} channel",
            args.channel
        ),
    }
}
