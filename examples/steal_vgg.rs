//! Steal the full-size VGG-S victim's architecture (paper §8.2 pipeline).
//!
//! Builds the 7-conv VGG-S (96-channel 7x7 stem, conv5_3 at 512x512x3x3),
//! prunes it with the paper-shaped sparsity profile, seals it inside an
//! Eyeriss-v2-like device, and runs the complete HuffDuff attack. Takes
//! roughly half a minute in release mode.
//!
//! ```text
//! cargo run --release --example steal_vgg                 # all cores, GEMM
//! cargo run --release --example steal_vgg -- -j 1         # serial baseline
//! cargo run --release --example steal_vgg -- -b direct    # direct conv loop
//! ```
//!
//! The `-j N` flag caps the prober's worker threads and `-b direct|gemm|sparse`
//! selects the simulator's convolution backend; any combination produces a
//! bit-identical result (the executor and all backends are deterministic),
//! only wall-clock changes.

use hd_tensor::ConvBackend;
use huffduff::prelude::*;
use huffduff_core::eval::{expected_conv_channels, score_geometry};

/// Parses `-j N` / `--parallelism N` from the command line.
fn parallelism_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "-j" || a == "--parallelism")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Parses `-b direct|gemm|sparse` / `--backend direct|gemm|sparse` from the command line.
fn backend_arg() -> ConvBackend {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "-b" || a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|v| ConvBackend::parse(v).unwrap_or_else(|| panic!("unknown backend {v:?}")))
        .unwrap_or_default()
}

fn main() {
    let net = hd_dnn::zoo::vgg_s(10);
    let mut params = hd_dnn::graph::Params::init(&net, 3);
    let profile = hd_dnn::prune::paper_profile(&net);
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 4);
    println!(
        "victim: VGG-S, {} dense weights, {} after pruning",
        net.dense_weight_count(&params),
        net.sparse_weight_count(&params)
    );

    let backend = backend_arg();
    let device = Device::new(
        net.clone(),
        params,
        AccelConfig::eyeriss_v2().with_conv_backend(backend),
    );

    let parallelism = parallelism_arg();
    let mut cfg = huffduff_core::AttackConfig::default();
    cfg.prober = cfg.prober.with_parallelism(parallelism);
    println!(
        "prober workers: {} ({} probe inferences fan out per family), conv backend: {}",
        cfg.prober.effective_parallelism(cfg.prober.shifts),
        cfg.prober.shifts,
        backend
    );

    let t0 = std::time::Instant::now();
    let outcome = huffduff_core::run(&device, &cfg).expect("attack runs");
    println!("attack completed in {:.1}s", t0.elapsed().as_secs_f64());
    println!("{}", outcome.report());

    // Evaluation only: compare against the ground truth the attacker never had.
    let score = score_geometry(&net, &outcome.prober);
    println!(
        "geometry: {}/{} layers exact ({} mismatches)",
        score.correct,
        score.total,
        score.mismatches.len()
    );
    for (idx, expected, got) in &score.mismatches {
        println!("  layer {idx}: expected {expected}, recovered {got}");
    }

    let true_k1 = expected_conv_channels(&net)[0];
    println!(
        "true K1 = {true_k1}; recovered range covers it: {}",
        outcome.space.k1_candidates.contains(&true_k1)
    );
    println!(
        "solution space: {} candidates (paper: 66 for VGG-S)",
        outcome.space.count()
    );
}
