//! Steal the full-size VGG-S victim's architecture (paper §8.2 pipeline).
//!
//! Builds the 7-conv VGG-S (96-channel 7x7 stem, conv5_3 at 512x512x3x3),
//! prunes it with the paper-shaped sparsity profile, seals it inside an
//! Eyeriss-v2-like device, and runs the complete HuffDuff attack. Takes
//! roughly half a minute in release mode.
//!
//! ```text
//! cargo run --release --example steal_vgg                   # all cores, GEMM
//! cargo run --release --example steal_vgg -- -j 1           # serial baseline
//! cargo run --release --example steal_vgg -- -b direct      # direct conv loop
//! cargo run --release --example steal_vgg -- -o obs.json    # telemetry export
//! cargo run --release --example steal_vgg -- -p 2:4         # N:M sparse victim
//! cargo run --release --example steal_vgg -- -p structured  # channel-removed victim
//! cargo run --release --example steal_vgg -- -c gemm        # Cache-Telepathy channel
//! cargo run --release --example steal_vgg -- --help         # all options
//! ```
//!
//! `-c` restricts what the attacker observes: `full` (the paper's trace +
//! timing channel), `trace` (volumes only, no timestamps), `timing`
//! (encode windows only), or `gemm` (GEMM call dimensions, the
//! Cache-Telepathy threat model — requires `-b gemm`). Restricted channels
//! recover less: the report says which stages degraded.
//!
//! `-p` selects how the victim was pruned: `unstructured` (the paper's
//! magnitude profile), `N:M` fine-grained sparsity, or `structured[:FRAC]`
//! channel removal — the latter physically shrinks layer shapes, so the
//! attack recovers the pruned widths, not the textbook VGG-S ones.
//!
//! `-j N` caps the prober's worker threads and `-b` selects the simulator's
//! convolution backend; any combination produces a bit-identical result
//! (the executor and all backends are deterministic), only wall-clock
//! changes. `-o obs.json` additionally records hd-obs telemetry — DRAM
//! bytes by transfer type, probe counts, cache hits, per-layer spans — and
//! writes it as JSON plus a Chrome trace (`obs.trace.json`, loadable in
//! `chrome://tracing`); telemetry never changes the attack outcome either.

#[path = "common/cli.rs"]
mod cli;

use huffduff::prelude::*;
use huffduff_core::eval::{expected_conv_channels, score_geometry};

fn main() {
    let args = cli::CliArgs::parse("steal_vgg");

    let net = hd_dnn::zoo::vgg_s(10);
    let params = hd_dnn::graph::Params::init(&net, 3);
    let (net, params) = cli::prune_victim(net, params, args.prune, 4);
    println!(
        "victim: VGG-S ({}), {} dense weights, {} after pruning",
        args.prune.label(),
        net.dense_weight_count(&params),
        net.sparse_weight_count(&params)
    );

    let backend = args.backend_or_default();
    let accel = AccelConfig::builder()
        .conv_backend(backend)
        .precision(args.precision())
        .build()
        .expect("valid accelerator config");
    if args.quantized {
        println!("precision: INT8 (post-training quantized, BN folded)");
    }
    let device = Device::new(net.clone(), params, accel);

    let cfg = huffduff_core::AttackConfig::builder()
        .prober(
            huffduff_core::ProberConfig::builder()
                .parallelism(args.parallelism)
                .build()
                .expect("valid prober config"),
        )
        .build()
        .expect("valid attack config");
    println!(
        "prober workers: {} ({} probe inferences fan out per family), conv backend: {}, \
         observation channel: {}",
        cfg.prober.effective_parallelism(cfg.prober.shifts),
        cfg.prober.shifts,
        backend,
        args.channel
    );

    cli::obs_begin(&args);
    let t0 = std::time::Instant::now();
    let model = args.channel.model(&device);
    let outcome = huffduff_core::run(model.as_ref(), &cfg).expect("attack runs");
    println!("attack completed in {:.1}s", t0.elapsed().as_secs_f64());
    cli::obs_finish(&args);
    println!("{}", outcome.report());

    // Evaluation only: compare against the ground truth the attacker never had.
    let score = score_geometry(&net, &outcome.prober);
    println!(
        "geometry: {}/{} layers exact ({} mismatches)",
        score.correct,
        score.total,
        score.mismatches.len()
    );
    for (idx, expected, got) in &score.mismatches {
        println!("  layer {idx}: expected {expected}, recovered {got}");
    }

    let true_k1 = expected_conv_channels(&net)[0];
    match &outcome.space {
        Some(space) => {
            println!(
                "true K1 = {true_k1}; recovered range covers it: {}",
                space.k1_candidates.contains(&true_k1)
            );
            println!(
                "solution space: {} candidates (paper: 66 for VGG-S)",
                space.count()
            );
        }
        None => println!(
            "solution space: not recoverable on the {} channel",
            args.channel
        ),
    }
}
